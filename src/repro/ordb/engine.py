"""The embedded object-relational database engine.

:class:`Database` is the stand-in for the Oracle 8i/9i instance the
paper stored documents in.  It executes the SQL dialect of
:mod:`repro.ordb.sql` — DDL for object/collection/REF types, object
tables with constraints, object views — and evaluates queries with
dot-notation navigation, constructors and CAST/MULTISET.

Statement and row-level counters are kept in :attr:`Database.stats`
because the reproduction benchmarks (CLM1/CLM2 in DESIGN.md) measure
exactly the operational quantities the paper argues about: number of
INSERT statements per document and number of scans/joins per query.

Concurrency is three-level (see docs/architecture.md and
docs/transactions.md):

* **snapshot reads (MVCC)** — SELECTs run against a commit-timestamp
  snapshot built from per-row version chains and acquire *no* locks;
  each committed transaction stamps its write set with a monotonic
  commit timestamp, and a GC pass prunes versions older than the
  oldest pinned snapshot;
* **logical isolation for writers** — each
  :class:`~repro.ordb.sessions.Session` takes table-level X locks
  (plus S locks for DML subquery reads) from the shared
  :class:`~repro.ordb.locks.LockManager` before a statement runs and
  holds them to transaction end (strict 2PL);
* **physical safety** — statement bodies mutate plain Python dicts
  and lists, so one engine latch serializes them; lock *waits* always
  happen before the latch is taken, never under it.
"""

from __future__ import annotations

import contextlib
import dataclasses
import itertools
import os
import threading
import time
from pathlib import Path

from repro.obs import Observability

from . import checkpoint as checkpoints
from . import identifiers
from .constraints import (
    CheckConstraint,
    ConstraintSet,
    NotNullConstraint,
    PrimaryKeyConstraint,
    ScopeForConstraint,
    UniqueConstraint,
)
from .datatypes import (
    CharType,
    ClobType,
    DataType,
    NestedTableType,
    ObjectType,
    RefType,
    Varchar2,
)
from .errors import (
    CheckViolation,
    DanglingReference,
    IncompleteType,
    LockTimeout,
    NameInUse,
    NestedCollectionNotSupported,
    NoSuchColumn,
    NoSuchTable,
    NoSuchType,
    NotSupported,
    NullNotAllowed,
    OrdbError,
    ReadOnlyViolation,
    SerializationConflict,
    StatementTimeout,
    TransactionError,
    TypeMismatch,
    UniqueViolation,
    WrongArgumentCount,
)
from .explain import PlanBuilder, QueryPlan
from .faults import FaultInjector
from .indexes import (
    ProbeSpec,
    RangeProbeSpec,
    SortedIndex,
    build_auto_indexes,
)
from .planner import AccessPlan, compute_table_stats, plan_access
from .textindex import (
    ContentIndex,
    FullTextIndex,
    FullTextProbeSpec,
    TrigramIndex,
    TrigramProbeSpec,
    select_scans_vectors,
)
from .locks import CATALOG_RESOURCE, EXCLUSIVE, SHARED, LockManager
from .sessions import Session
from .expressions import (
    AGGREGATE_FUNCTIONS,
    Binding,
    Env,
    Evaluator,
    collect_aggregates,
    contains_aggregate,
)
from .results import Result
from .schema import Catalog, Column, CompatibilityMode, Table, View
from .sql import ast
from .sql.lexer import split_statements
from .sql.parser import parse_statement
from .storage import Row, next_oid
from .transactions import UndoJournal
from .wal import (
    GroupCommitter,
    WriteAheadLog,
    decode_transaction,
    encode_transaction,
)
from .values import (
    CollectionValue,
    ObjectValue,
    RefValue,
    coerce_value,
)
from .datatypes import TypeAttribute


class _Snapshot:
    """Per-statement snapshot context for one MVCC SELECT.

    ``ts`` is the commit timestamp the statement reads as of;
    ``token`` is the reading transaction's write token (a session
    always sees its own uncommitted changes); ``cacheable`` is False
    when the transaction has pending writes, so view results that mix
    in uncommitted data never enter the shared cache;
    ``saw_pending`` flips when the reader skipped past another
    transaction's uncommitted row — the schedule where a 2PL reader
    would have blocked on an S lock.
    """

    __slots__ = ("ts", "token", "cacheable", "saw_pending")

    def __init__(self, ts: int, token: int | None, cacheable: bool):
        self.ts = ts
        self.token = token
        self.cacheable = cacheable
        self.saw_pending = False


class Database:
    """One in-memory object-relational database instance."""

    #: Parsed-statement cache capacity (entries; LRU eviction).
    STATEMENT_CACHE_SIZE = 256

    def __init__(self, mode: CompatibilityMode = CompatibilityMode.ORACLE9,
                 obs: Observability | None = None,
                 enable_indexes: bool = True,
                 lock_timeout: float = 5.0,
                 commit_latency: float = 0.0,
                 path: str | os.PathLike | None = None,
                 fsync: str = "commit",
                 checkpoint_every: int | None = None,
                 mvcc: bool = True,
                 group_commit: bool | float = False):
        self.catalog = Catalog(mode)
        self.evaluator = Evaluator(self)
        self.stats: dict[str, int] = {}
        self.faults = FaultInjector()
        self.faults.on_fire = self._fault_fired
        #: observability hooks; disabled by default (zero-cost path)
        self.obs = obs if obs is not None else Observability()
        #: index-selection switch; False forces the seed nested-loop
        #: path everywhere (benchmarks compare against it).  Index
        #: *maintenance* still runs so the flag can be flipped live.
        self.enable_indexes = enable_indexes
        #: table-level S/X locks isolating sessions from each other
        self.locks = LockManager(timeout=lock_timeout)
        self.locks.on_event = self._lock_event
        #: seconds one COMMIT costs, modelling the commit-ack round
        #: trip of the paper's client-server setup; slept *outside*
        #: all locks so concurrent sessions overlap their waits
        self.commit_latency = commit_latency
        #: serializes statement bodies (and rollback replay): the
        #: engine mutates plain dicts/lists, so exactly one statement
        #: touches shared structures at a time.  Reentrant because
        #: transaction control may run inside an executing script.
        self._latch = threading.RLock()
        #: guards the parsed-statement LRU, which is consulted before
        #: the latch is taken (parsing must not serialize sessions)
        self._stmt_cache_lock = threading.Lock()
        self._active_journal: UndoJournal | None = None
        #: monotonic deadline of the statement currently holding the
        #: latch (statement bodies are serialized by it, so one slot
        #: suffices); row loops poll this to abort over-budget scans
        self._statement_deadline: float | None = None
        #: SQL text -> parsed AST (ASTs are frozen, safe to re-execute)
        self._statement_cache: dict[str, ast.Statement] = {}
        #: view key -> (data version, Result) — dropped when stale
        self._view_cache: dict[str, tuple[int, Result]] = {}
        #: (view key, snapshot ts) -> (query AST, Result) for MVCC
        #: reads: a result at a fixed timestamp never goes stale, so
        #: entries are evicted only by DDL or by the size bound.  The
        #: stored query object pins identity against CREATE OR
        #: REPLACE reusing the key.
        self._snap_view_cache: dict[tuple[str, int],
                                    tuple[object, Result]] = {}
        #: bumped by every DML/DDL statement and rollback; versions
        #: key the view cache so invalidation is O(1)
        self._data_version = 0
        #: MVCC master switch; False restores the seed behaviour where
        #: SELECTs take S locks and read current data (benchmarks
        #: compare both, and EXPLAIN reports the active mode)
        self.mvcc = mvcc
        #: monotonic commit timestamp; every committed transaction
        #: that wrote rows advances it by one and stamps its write set
        self._commit_ts = 0
        #: write tokens marking uncommitted rows (``Row.pending``)
        self._token_counter = itertools.count(1)
        #: sid -> pinned snapshot timestamp (SET TRANSACTION READ
        #: ONLY / SERIALIZABLE); the GC horizon never passes the
        #: oldest entry
        self._pinned: dict[int, int] = {}
        #: snapshot context of the SELECT currently holding the latch
        #: (single slot: statement bodies are latch-serialized)
        self._active_snapshot: _Snapshot | None = None
        #: (table, row) pairs the statement currently holding the
        #: latch has written; merged into the transaction's write set
        #: (or stamped immediately in autocommit)
        self._active_write_set: list | None = None
        #: write token of the DML statement currently holding the latch
        self._active_token: int | None = None
        #: session of the statement currently holding the latch (lets
        #: the EXPLAIN handler report that session's read mode)
        self._active_session: Session | None = None
        #: snapshot timestamp a SERIALIZABLE writer must not overwrite
        #: past (first-committer-wins check; None = no check)
        self._serial_ts: int | None = None
        #: live committed pre-images across all version chains
        self._version_records = 0
        #: True when a commit could not clean up inline because a
        #: pinned snapshot might still need the old versions
        self._gc_backlog = False
        #: write sets accumulated while recovery replays one WAL
        #: record; stamped with one commit timestamp per record
        self._replay_write_set: list = []
        self._next_sid = itertools.count(1)
        #: sids handed out by :meth:`session` and not yet closed
        self._open_sessions: set[int] = set()
        #: durable mode (``path`` given): write-ahead log + checkpoints;
        #: None for the default in-memory engine
        self.path = Path(path) if path is not None else None
        self.fsync_policy = fsync
        #: auto-checkpoint after this many WAL appends (None = manual)
        self.checkpoint_every = checkpoint_every
        self.wal: WriteAheadLog | None = None
        #: commit coalescer batching concurrent committers into one
        #: append+fsync; None unless ``group_commit`` was requested on
        #: a durable engine.  ``group_commit=True`` uses the default
        #: collection window; a float gives the window in seconds.
        self.group_committer: GroupCommitter | None = None
        self._group_commit_requested = group_commit
        #: summary of the last durable open (replayed counts, seconds)
        self.recovery_info: dict | None = None
        self._commit_seq = 0
        self._commits_since_checkpoint = 0
        #: True while recovery replays the WAL (suppresses re-logging)
        self._wal_suppressed = False
        #: sessions with an open transaction; checkpoints refuse to
        #: snapshot while any of them has pending work
        self._txn_sessions: set[Session] = set()
        self._txn_lock = threading.Lock()
        #: the implicit connection legacy single-threaded callers use
        self._default_session = Session(self, next(self._next_sid),
                                        name="main")
        self.reset_stats()
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
            self._recover()
            if group_commit:
                window = (group_commit
                          if isinstance(group_commit, float) else 0.001)
                self.group_committer = GroupCommitter(
                    self.wal, window=window,
                    on_batch=self._group_batch_written)
            self.reset_stats()

    def _fault_fired(self, event) -> None:
        if self.obs.enabled:
            self.obs.metrics.counter("faults.injected", unit="faults").inc()

    def _lock_event(self, kind: str, resource: str, mode: str,
                    seconds: float) -> None:
        """Bridge lock-manager contention events into stats/metrics."""
        key = {"wait": "lock_waits", "timeout": "lock_timeouts",
               "deadlock": "deadlocks"}[kind]
        self.stats[key] += 1
        if self.obs.enabled:
            metrics = self.obs.metrics
            if kind == "wait":
                metrics.counter("db.lock_waits", unit="waits").inc()
                metrics.histogram("db.lock_wait_seconds",
                                  unit="s").observe(seconds)
            elif kind == "timeout":
                metrics.counter("db.lock_timeouts",
                                unit="timeouts").inc()
            else:
                metrics.counter("db.deadlocks", unit="deadlocks").inc()

    @property
    def mode(self) -> CompatibilityMode:
        return self.catalog.mode

    def reset_stats(self) -> None:
        """Zero the operation counters used by the benchmarks."""
        self.stats = {
            "statements": 0,
            "inserts": 0,
            "selects": 0,
            "rows_scanned": 0,
            "rows_inserted": 0,
            "full_scans": 0,
            "joins": 0,
            "derefs": 0,
            "index_lookups": 0,
            "index_unique_checks": 0,
            "range_index_lookups": 0,
            "fulltext_lookups": 0,
            "trigram_lookups": 0,
            "vector_scans": 0,
            "planner_full_scan_fallbacks": 0,
            "stmt_cache_hits": 0,
            "stmt_cache_misses": 0,
            "view_cache_hits": 0,
            "view_cache_misses": 0,
            "lock_waits": 0,
            "lock_timeouts": 0,
            "deadlocks": 0,
            "wal_appends": 0,
            "wal_bytes": 0,
            "group_commit_batches": 0,
            "group_commit_records": 0,
            "checkpoints": 0,
            "snapshot_reads": 0,
            "locking_reads": 0,
            "reader_lock_waits_avoided": 0,
            "gc_versions_pruned": 0,
            "gc_tombstones_pruned": 0,
        }

    # -- sessions ---------------------------------------------------------------------

    def session(self, name: str = "") -> Session:
        """Open a new session (one logical connection; one thread).

        The session shares this database's catalog, rows, indexes and
        caches but owns its transaction state; the lock manager keeps
        it isolated from concurrent sessions.  Close it (or use it as
        a context manager) to release its locks and id.
        """
        session = Session(self, next(self._next_sid), name)
        self._open_sessions.add(session.sid)
        if self.obs.enabled:
            self.obs.metrics.gauge("db.active_sessions",
                                   unit="sessions").inc()
        return session

    def _session_closed(self, session: Session) -> None:
        if session.sid in self._open_sessions:
            self._open_sessions.discard(session.sid)
            if self.obs.enabled:
                self.obs.metrics.gauge("db.active_sessions",
                                       unit="sessions").dec()

    def _txn_started(self, session: Session) -> None:
        with self._txn_lock:
            self._txn_sessions.add(session)
        if session.txn is not None and session.txn.token is None:
            session.txn.token = next(self._token_counter)

    def _txn_finished(self, session: Session) -> None:
        with self._txn_lock:
            self._txn_sessions.discard(session)
        self._unpin_snapshot(session)

    # -- MVCC: snapshots, commit timestamps, version GC -------------------------------

    def _pin_snapshot(self, session: Session, ts: int) -> None:
        """Hold the GC horizon at *ts* for a transaction-lifetime
        snapshot (SET TRANSACTION READ ONLY / SERIALIZABLE)."""
        with self._txn_lock:
            self._pinned[session.sid] = ts
        if self.obs.enabled:
            self.obs.metrics.gauge("db.pinned_snapshots",
                                   unit="snapshots").inc()

    def _unpin_snapshot(self, session: Session) -> None:
        with self._txn_lock:
            pinned = self._pinned.pop(session.sid, None)
        if pinned is None:
            return
        if self.obs.enabled:
            self.obs.metrics.gauge("db.pinned_snapshots",
                                   unit="snapshots").dec()
        if self._gc_backlog and not self._pinned:
            # the horizon just advanced past deferred garbage
            self.vacuum()

    def _statement_snapshot(self, session: Session) -> _Snapshot:
        """The snapshot one SELECT reads under (caller holds the
        latch).  READ COMMITTED takes a fresh statement-level
        snapshot; a pinned transaction reuses its BEGIN-time one."""
        txn = session.txn
        if txn is None:
            return _Snapshot(self._commit_ts, None, True)
        ts = (txn.snapshot_ts if txn.snapshot_ts is not None
              else self._commit_ts)
        cacheable = not txn.write_set and not len(txn.journal)
        return _Snapshot(ts, txn.token, cacheable)

    def _push_version(self, table: Table, row: Row) -> bool:
        """First-touch capture: archive *row*'s committed image before
        an uncommitted overwrite, and mark the row pending.  Returns
        True when an image was pushed (the caller's undo must pop
        it); re-touches by the same transaction push nothing.
        """
        token = self._active_token
        if row.pending is not None and row.pending == token:
            return False
        if row.versions is None:
            row.versions = []
        row.versions.append((row.cts, dict(row.values)))
        row.pending = token
        self._version_records += 1
        if self.obs.enabled:
            self.obs.metrics.histogram(
                "db.version_chain_length",
                unit="versions").observe(len(row.versions))
        return True

    def _pop_version(self, table: Table, row: Row) -> None:
        """Undo of :meth:`_push_version` (statement/savepoint
        rollback): drop the pushed image and clear pending."""
        if row.versions:
            row.versions.pop()
            self._version_records -= 1
        row.pending = None
        if not row.versions:
            row.versions = None
            table.data.untrack_version(row)

    def _serial_write_check(self, row: Row) -> None:
        """First-committer-wins: a SERIALIZABLE transaction must not
        overwrite a version committed after its snapshot."""
        if self._serial_ts is not None and row.pending is None \
                and row.cts > self._serial_ts:
            raise SerializationConflict(
                f"row committed at ts={row.cts} is newer than this"
                f" transaction's snapshot (ts={self._serial_ts});"
                f" retry against a fresh snapshot")

    def _commit_transaction(self, txn) -> None:
        """Stamp an explicit transaction's write set with one fresh
        commit timestamp (called by :meth:`Session.commit` after the
        WAL append succeeded)."""
        if not self.mvcc or not txn.write_set:
            return
        with self._latch:
            self._stamp_commit(txn.write_set)

    def _stamp_commit(self, write_set: list) -> None:
        """Make a write set visible: one commit timestamp for all of
        its still-pending rows (caller holds the latch).  Rows whose
        pending mark was cleared by a savepoint rollback are skipped —
        their changes were undone and must not be re-exposed."""
        live = []
        seen: set[int] = set()
        for table, row in write_set:
            if row.pending is None or id(row) in seen:
                continue
            seen.add(id(row))
            live.append((table, row))
        if not live:
            return
        self._commit_ts += 1
        ts = self._commit_ts
        for _table, row in live:
            row.cts = ts
            row.pending = None
        # visibility changed for snapshot readers: retire cached
        # current-read view results keyed on the old data version
        self._data_version += 1
        self._gc_after_commit(live)

    def _gc_after_commit(self, live: list) -> None:
        """Inline GC at commit: with no pinned snapshot, no reader can
        ever need the just-superseded versions (statement-level
        snapshots are taken under the latch we hold), so the chains of
        the committed rows are garbage right now."""
        if self._pinned:
            self._gc_backlog = True
            return
        pruned_versions = pruned_tombstones = 0
        for table, row in live:
            if row.versions:
                pruned_versions += len(row.versions)
                self._version_records -= len(row.versions)
                row.versions = None
                table.data.untrack_version(row)
            if row.deleted:
                table.data.remove_tombstone(row)
                pruned_tombstones += 1
        self._note_gc(pruned_versions, pruned_tombstones)

    def _snapshot_horizon(self) -> int:
        with self._txn_lock:
            if self._pinned:
                return min(self._pinned.values())
        return self._commit_ts

    def vacuum(self) -> dict:
        """Prune version chains and tombstones no snapshot can reach.

        The horizon is the oldest pinned snapshot timestamp (or the
        current commit timestamp when nothing is pinned): for each
        versioned row, images older than the newest image at or below
        the horizon are unreachable; a committed tombstone at or
        below the horizon is invisible to everyone and is dropped
        entirely.  Safe to call any time; commits run an inline
        version of this automatically.
        """
        pruned_versions = pruned_tombstones = 0
        with self._latch:
            horizon = self._snapshot_horizon()
            for table in self.catalog.tables.values():
                data = table.data
                for row in list(data.versioned.values()):
                    pruned_versions += self._prune_chain(row, horizon)
                    if not row.versions:
                        row.versions = None
                        data.untrack_version(row)
                if data.tombstones:
                    kept = []
                    for row in data.tombstones:
                        if row.pending is None and row.cts <= horizon:
                            pruned_versions += len(row.versions or ())
                            self._version_records -= len(
                                row.versions or ())
                            row.versions = None
                            pruned_tombstones += 1
                        else:
                            pruned_versions += self._prune_chain(
                                row, horizon)
                            kept.append(row)
                    data.tombstones[:] = kept
            self._gc_backlog = False
            self._note_gc(pruned_versions, pruned_tombstones)
        return {"versions_pruned": pruned_versions,
                "tombstones_pruned": pruned_tombstones,
                "horizon": horizon}

    def _prune_chain(self, row: Row, horizon: int) -> int:
        """Drop *row*'s version images unreachable below *horizon*;
        returns how many were dropped (and maintains the global
        version-record count)."""
        chain = row.versions
        if not chain:
            return 0
        if (row.pending is None and not row.deleted
                and row.cts <= horizon):
            # current contents visible to every snapshot >= horizon:
            # the whole chain is garbage
            dropped = len(chain)
            chain.clear()
        else:
            # keep the newest image at or below the horizon (what a
            # horizon-age snapshot reads) and everything newer
            keep_from = 0
            for index in range(len(chain) - 1, -1, -1):
                if chain[index][0] <= horizon:
                    keep_from = index
                    break
            dropped = keep_from
            del chain[:keep_from]
        self._version_records -= dropped
        return dropped

    def _note_gc(self, versions: int, tombstones: int) -> None:
        if not versions and not tombstones:
            return
        self.stats["gc_versions_pruned"] += versions
        self.stats["gc_tombstones_pruned"] += tombstones
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.counter("db.gc_versions_pruned",
                            unit="versions").inc(versions)
            metrics.counter("db.gc_tombstones_pruned",
                            unit="rows").inc(tombstones)

    def mvcc_info(self) -> dict:
        """A point-in-time summary of the version store (for tests,
        docs and the observability surface)."""
        with self._latch:
            tombstones = sum(len(table.data.tombstones)
                             for table in self.catalog.tables.values())
            with self._txn_lock:
                pinned = dict(self._pinned)
            return {"enabled": self.mvcc,
                    "commit_ts": self._commit_ts,
                    "version_records": self._version_records,
                    "tombstones": tombstones,
                    "pinned_snapshots": pinned}

    # -- durability -------------------------------------------------------------------

    def _recover(self) -> None:
        """Durable open: newest valid checkpoint, then WAL replay.

        Replayed statements re-execute through the normal statement
        path (journaled, indexed, constraint-checked) with WAL
        re-logging suppressed; a torn or corrupt log tail was already
        truncated by :meth:`WriteAheadLog.open`, so every record seen
        here is a fully-committed transaction.  Records at or below
        the checkpoint's commit sequence are skipped — that makes a
        crash between checkpoint and log truncation harmless.
        """
        started = time.perf_counter()
        span_scope = (self.obs.tracer.span("recovery",
                                           path=str(self.path))
                      if self.obs.enabled else contextlib.nullcontext())
        with span_scope as span:
            state = checkpoints.load_latest(self.path)
            if state is not None:
                checkpoints.install_state(self, state)
            wal = WriteAheadLog(self.path / "wal.log",
                                policy=self.fsync_policy,
                                faults=self.faults)
            payloads = wal.open()
            transactions = statements = skipped = 0
            self._wal_suppressed = True
            try:
                for payload in payloads:
                    seq, redo = decode_transaction(payload)
                    if seq <= self._commit_seq:
                        skipped += 1
                        continue
                    for statement in redo:
                        self._execute(statement)
                        statements += 1
                    if self._replay_write_set:
                        # one commit timestamp per WAL record, exactly
                        # like the pre-crash commit that produced it
                        with self._latch:
                            self._stamp_commit(self._replay_write_set)
                        self._replay_write_set = []
                    self._commit_seq = seq
                    transactions += 1
            finally:
                self._wal_suppressed = False
            self._rebuild_content_indexes()
            self.wal = wal
            elapsed = time.perf_counter() - started
            self.recovery_info = {
                "checkpoint_loaded": state is not None,
                "transactions_replayed": transactions,
                "statements_replayed": statements,
                "records_skipped": skipped,
                "torn_bytes_discarded": wal.truncated_bytes,
                "seconds": elapsed,
            }
            if span is not None:
                span.set(transactions=transactions,
                         statements=statements)
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.histogram("db.recovery_seconds",
                              unit="s").observe(elapsed)
            metrics.counter("db.recovered_transactions",
                            unit="transactions").inc(transactions)

    def _rebuild_content_indexes(self) -> None:
        """Recompute every posting-list index from its table's rows.

        Run after checkpoint install + WAL replay: replay re-executes
        maintenance faithfully, but rebuilding from the recovered rows
        makes the posting lists *definitionally* consistent with
        storage no matter what the pre-crash sequence was."""
        for table in self.catalog.tables.values():
            for index in table.indexes:
                if isinstance(index, ContentIndex):
                    index.rebuild(table.data.rows)

    def _wal_commit(self, statements: list) -> None:
        """Append one committed transaction's redo list to the WAL.

        No-op for in-memory engines and during recovery replay.  The
        sequence number only advances once the append succeeded, so a
        failed (torn) append's sequence is reused by the next commit
        (a failed *group-commit* batch leaves a sequence gap instead —
        replay only requires sequences to be increasing).

        With :attr:`group_committer` set, concurrent committers
        coalesce into one shared append+fsync; this call still only
        returns once *this* transaction's record is durable.
        """
        if (self.wal is None or self._wal_suppressed
                or not statements):
            return
        if self.group_committer is not None:
            def encode() -> bytes:
                # runs under the WAL lock, in batch order: sequence
                # numbers stay monotonic across batch members
                seq = self._commit_seq + 1
                payload = encode_transaction(seq, statements)
                self._commit_seq = seq
                return payload

            written, _size = self.group_committer.commit(encode)
            self._commits_since_checkpoint += 1
        else:
            with self.wal.lock:
                seq = self._commit_seq + 1
                written = self.wal.append(encode_transaction(seq,
                                                             statements))
                self._commit_seq = seq
                self._commits_since_checkpoint += 1
        self.stats["wal_appends"] += 1
        self.stats["wal_bytes"] += written
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.counter("db.wal_appends", unit="records").inc()
            metrics.counter("db.wal_bytes", unit="bytes").inc(written)

    def _group_batch_written(self, size: int) -> None:
        """Stats hook: one group-commit batch of *size* records went
        durable with a single append+fsync."""
        self.stats["group_commit_batches"] += 1
        self.stats["group_commit_records"] += size
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.counter("db.group_commit_batches",
                            unit="batches").inc()
            metrics.histogram("db.group_commit_batch_size",
                              unit="records").observe(size)

    def checkpoint(self) -> dict:
        """Snapshot the database durably and truncate the WAL.

        Requires durable mode and a quiescent engine: any open
        transaction with pending work raises
        :class:`~repro.ordb.errors.TransactionError` (its uncommitted
        changes live in the shared structures and must not leak into
        a snapshot).  Holds the latch and the WAL lock together so no
        commit can land between the snapshot and the truncation.
        """
        if self.wal is None:
            raise NotSupported(
                "checkpoint requires a durable Database(path=...)")
        span_scope = (self.obs.tracer.span("checkpoint")
                      if self.obs.enabled else contextlib.nullcontext())
        with span_scope:
            with self._latch:
                with self.wal.lock:
                    with self._txn_lock:
                        busy = sorted(
                            s.name for s in self._txn_sessions
                            if s.txn is not None
                            and (s.txn.statements or len(s.txn.journal)))
                    if busy:
                        raise TransactionError(
                            "checkpoint requires no transaction with"
                            f" pending work; active: {', '.join(busy)}")
                    info = checkpoints.write_checkpoint(self)
                    self.wal.truncate()
                    self._commits_since_checkpoint = 0
        self.stats["checkpoints"] += 1
        if self.obs.enabled:
            self.obs.metrics.counter("db.checkpoints",
                                     unit="checkpoints").inc()
        return info

    def _maybe_autocheckpoint(self) -> None:
        """Checkpoint when the configured commit interval elapsed;
        silently deferred while other transactions are in flight."""
        if (self.wal is None or self.checkpoint_every is None
                or self._commits_since_checkpoint
                < self.checkpoint_every):
            return
        try:
            self.checkpoint()
        except TransactionError:
            pass  # busy engine: try again after a later commit

    def close(self) -> None:
        """Flush and close the durable log (no-op for in-memory)."""
        if self.wal is not None:
            self.wal.close()

    # -- public API -------------------------------------------------------------------

    def execute(self, statement: str | ast.Statement,
                session: Session | None = None) -> Result:
        """Execute one statement (SQL text or a pre-parsed AST).

        Statements are individually atomic: if one raises midway (a
        constraint violation on the third row of an INSERT...SELECT,
        an injected fault), everything it already changed is undone
        before the error propagates — inside or outside an explicit
        transaction.

        *session* selects whose transaction and locks the statement
        runs under; None means the database's implicit default
        session (single-threaded legacy behaviour).
        """
        if not self.obs.enabled:
            return self._execute(statement, session)
        return self._execute_observed(statement, session)

    def _execute_observed(self, statement: str | ast.Statement,
                          session: Session | None = None) -> Result:
        """The instrumented execute path (observability enabled)."""
        obs = self.obs
        sql = statement if isinstance(statement, str) else None
        label = sql.strip() if sql is not None \
            else type(statement).__name__
        start = obs.clock()
        try:
            with obs.tracer.span("execute", sql=label[:120]) as span:
                result = self._execute(statement, session)
                span.set(rows=result.rowcount)
        except Exception:
            obs.metrics.counter("db.errors", unit="errors").inc()
            obs.metrics.histogram("db.statement_seconds", unit="s") \
                .observe(obs.clock() - start)
            raise
        elapsed = obs.clock() - start
        obs.metrics.counter("db.statements", unit="statements").inc()
        obs.metrics.counter("db.rows_touched", unit="rows").inc(result.rowcount)
        obs.metrics.histogram("db.statement_seconds", unit="s") \
            .observe(elapsed)
        obs.slow_log.record(label, elapsed, result.rowcount)
        return result

    def _execute(self, statement: str | ast.Statement,
                 session: Session | None = None) -> Result:
        session = session or self._default_session
        source = statement  # what the WAL would replay (text or AST)
        if isinstance(statement, str):
            self.faults.hit("parse", sql=statement)
            statement = self._parse_cached(statement)
        self.stats["statements"] += 1
        handled = self._handle_transaction_control(statement, session)
        if handled is not None:
            return handled
        self.faults.hit("statement", statement=statement)
        if session.txn is not None:
            # even a pure read counts as "a statement ran": Oracle's
            # SET TRANSACTION must precede it (see Session.set_transaction)
            session.txn.executed = True
        if (session.txn is not None and session.txn.read_only
                and not isinstance(statement, (ast.SelectStmt,
                                               ast.ExplainStmt))):
            raise ReadOnlyViolation(
                "cannot perform DML or DDL inside a READ ONLY"
                " transaction")
        deadline = None
        if session.statement_timeout is not None:
            deadline = time.monotonic() + session.statement_timeout
        snapshot_read = (self.mvcc
                         and isinstance(statement, ast.SelectStmt))
        # ANALYZE under MVCC is likewise lock-free: a read-only stats
        # scan must never stall writers (the row walk runs under the
        # engine latch; the stats swap is journaled like any DDL)
        lockfree_read = snapshot_read or (
            self.mvcc and isinstance(statement, ast.Analyze))
        # DML keeps its write locks, but its *inner* reads (INSERT ...
        # SELECT, UPDATE/DELETE subqueries) run against the same
        # statement snapshot a top-level SELECT would use — otherwise
        # they read current state and see concurrent commits mid-DML.
        # Not during WAL replay: replayed statements of one record are
        # stamped together afterwards, so mid-record rows are still
        # pending and a snapshot would hide them from inner reads.
        dml_read = (self.mvcc and not self._wal_suppressed
                    and isinstance(statement, (ast.Insert, ast.Update,
                                               ast.Delete)))
        if not lockfree_read:
            if isinstance(statement, ast.SelectStmt):
                self.stats["locking_reads"] += 1
            # locks are acquired *before* the latch: a blocked session
            # must never stall the sessions currently executing
            self._acquire_statement_locks(session, statement, deadline)
        try:
            with self._latch:
                previous = self._statement_deadline
                self._statement_deadline = deadline
                self._active_session = session
                snap = None
                if snapshot_read or dml_read:
                    # MVCC: the SELECT reads a commit-timestamp
                    # snapshot and holds zero table locks; pending
                    # rows of concurrent writers are skipped in
                    # favour of their chained committed images
                    snap = self._statement_snapshot(session)
                    self._active_snapshot = snap
                try:
                    return self._execute_body(statement, session,
                                              source)
                finally:
                    self._statement_deadline = previous
                    self._active_session = None
                    if snap is not None:
                        self._active_snapshot = None
                    if snap is not None and snapshot_read:
                        self.stats["snapshot_reads"] += 1
                        if snap.saw_pending:
                            self.stats["reader_lock_waits_avoided"] += 1
                        if self.obs.enabled:
                            self.obs.metrics.counter(
                                "db.snapshot_reads",
                                unit="statements").inc()
                            if snap.saw_pending:
                                self.obs.metrics.counter(
                                    "db.reader_lock_waits_avoided",
                                    unit="statements").inc()
        finally:
            if session.txn is None:  # autocommit: statement-duration
                self.locks.release_all(session.sid)

    def _execute_body(self, statement: ast.Statement,
                      session: Session,
                      source: str | ast.Statement | None = None
                      ) -> Result:
        """The statement body; runs under the engine latch."""
        if isinstance(statement, ast.SelectStmt):
            self.stats["selects"] += 1
            return self.execute_select(statement, None)
        handler = self._HANDLERS.get(type(statement))
        if handler is None:  # pragma: no cover - parser prevents this
            raise NotSupported(
                f"unsupported statement {type(statement).__name__}")
        if self.mvcc and isinstance(statement, _DESTRUCTIVE_DDL) or (
                self.mvcc and isinstance(statement, ast.CreateView)
                and statement.or_replace
                and identifiers.normalize(statement.name)
                in self.catalog.views):
            # DDL is not versioned: the catalog has no chains, so a
            # pinned snapshot cannot read around a dropped table or a
            # replaced index set.  First-pinner wins — the DDL aborts
            # with the transient serialization error (ORA-08177 style)
            # and can be retried once the readers commit.
            with self._txn_lock:
                conflicting = sorted(sid for sid in self._pinned
                                     if sid != session.sid)
            if conflicting:
                raise SerializationConflict(
                    f"cannot run"
                    f" {type(statement).__name__.upper()} while"
                    f" {len(conflicting)} other session(s) hold pinned"
                    f" snapshots (READ ONLY or SERIALIZABLE); retry"
                    f" after they commit")
        if not isinstance(statement, (ast.ExplainStmt, ast.Analyze)):
            # DDL (and zero-row DML) invalidates cached view results;
            # row-level changes bump the version again as they happen.
            # ANALYZE is exempt: it only refreshes optimizer stats and
            # changes no rows, so cached results stay valid.
            self._data_version += 1
            if not isinstance(statement,
                              (ast.Insert, ast.Update, ast.Delete)):
                # DDL is not versioned (the catalog has no chains), so
                # snapshot-keyed view results cannot express it: drop
                # them all rather than serve a pre-DDL shape
                self._snap_view_cache.clear()
        journal = UndoJournal()
        outer = self._active_journal
        self._active_journal = journal
        txn = session.txn
        write_set: list | None = None
        if self.mvcc and not isinstance(statement, ast.ExplainStmt):
            # DML under MVCC: rows touched by this statement carry
            # this token (``Row.pending``) until their commit stamp
            write_set = []
            self._active_write_set = write_set
            self._active_token = (txn.token if txn is not None
                                  else next(self._token_counter))
            if txn is not None and txn.isolation == "SERIALIZABLE" \
                    and txn.snapshot_ts is not None:
                self._serial_ts = txn.snapshot_ts
        try:
            result = handler(self, statement)
        except BaseException:
            self._active_journal = outer
            journal.undo_to(0)
            # the undo restored pre-statement data under the bumped
            # version; bump again so mid-statement cache entries die
            self._data_version += 1
            raise
        finally:
            self._active_write_set = None
            self._active_token = None
            self._serial_ts = None
        self._active_journal = outer
        logged = (source is not None
                  and not isinstance(statement, ast.ExplainStmt))
        if session.txn is not None:
            session.txn.journal.absorb(journal)
            if write_set:
                # stamped all at once when the transaction commits
                session.txn.write_set.extend(write_set)
            if logged:
                # redo side of the transaction: flushed to the WAL in
                # one record at COMMIT (savepoints truncate the list)
                session.txn.statements.append(source)
        else:
            durable = (logged and self.wal is not None
                       and not self._wal_suppressed)
            if durable:
                # autocommit in durable mode: one WAL record per
                # statement; on append failure the in-memory change is
                # undone too, so memory never runs ahead of what
                # recovery will rebuild (and nothing gets stamped
                # visible)
                try:
                    self._wal_commit([source])
                except BaseException:
                    journal.undo_to(0)
                    self._data_version += 1
                    raise
            if write_set:
                if self._wal_suppressed:
                    # recovery replay: stamped once per WAL record so
                    # commit timestamps match the pre-crash history
                    self._replay_write_set.extend(write_set)
                else:  # autocommit: the statement is the transaction
                    self._stamp_commit(write_set)
            if durable:
                # after stamping: a checkpoint must never snapshot
                # rows still marked pending
                self._maybe_autocheckpoint()
        return result

    # -- lock planning ----------------------------------------------------------------

    def _acquire_statement_locks(self, session: Session,
                                 statement: ast.Statement,
                                 deadline: float | None = None) -> None:
        """Take every table lock *statement* needs, in sorted resource
        order (a global order prevents lock-order deadlocks between
        single statements; transaction-spanning cycles remain and are
        caught by the wait-for graph).

        *deadline* (monotonic seconds) caps the total lock wait: a
        request that cannot be granted in time aborts with
        :class:`StatementTimeout` instead of blocking into a budget
        the statement no longer has.
        """
        for resource, lock_mode in self._statement_locks(statement):
            self.faults.hit("lock", resource=resource, mode=lock_mode,
                            session=session.name)
            if deadline is None:
                self.locks.acquire(session.sid, resource, lock_mode)
                continue
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise StatementTimeout(
                    f"statement exceeded its"
                    f" {session.statement_timeout:.3f}s budget"
                    f" waiting for {lock_mode} lock on {resource}")
            try:
                self.locks.acquire(session.sid, resource, lock_mode,
                                   timeout=min(self.locks.timeout,
                                               remaining))
            except LockTimeout:
                if time.monotonic() >= deadline:
                    raise StatementTimeout(
                        f"statement exceeded its"
                        f" {session.statement_timeout:.3f}s budget"
                        f" waiting for {lock_mode} lock on"
                        f" {resource}") from None
                raise

    def _statement_locks(
            self, statement: ast.Statement) -> list[tuple[str, str]]:
        """The (resource, mode) set a statement must hold.

        SELECT → S on every referenced table (views expanded to their
        underlying tables); DML → X on the target plus S on tables its
        subqueries read; DDL → X on the catalog resource and on the
        named object.  EXPLAIN locks nothing (it never touches rows).
        """
        reads: set[str] = set()
        writes: set[str] = set()
        if isinstance(statement, ast.SelectStmt):
            _collect_table_refs(statement, reads)
        elif isinstance(statement, ast.Insert):
            writes.add(identifiers.normalize(statement.table))
            _collect_table_refs(statement, reads)
        elif isinstance(statement, (ast.Update, ast.Delete)):
            writes.add(identifiers.normalize(statement.table))
            _collect_table_refs(statement, reads)
        elif isinstance(statement, ast.ExplainStmt):
            return []
        elif isinstance(statement, ast.CreateIndex):
            # index DDL also rewrites the table's probe paths: exclude
            # concurrent writers (readers are excluded by the pinned-
            # snapshot conflict check / S locks in locking mode)
            writes.add(CATALOG_RESOURCE)
            writes.add(identifiers.normalize(statement.name))
            writes.add(identifiers.normalize(statement.table))
        elif isinstance(statement, ast.Analyze):
            # a read-only stats scan: SHARED is enough — writers must
            # not stall behind ANALYZE (it changes no rows, and the
            # stats swap itself is serialized by the engine latch)
            reads.add(identifiers.normalize(statement.table))
        else:  # DDL
            writes.add(CATALOG_RESOURCE)
            name = getattr(statement, "name", None)
            if isinstance(name, str):
                writes.add(identifiers.normalize(name))
        self._expand_view_reads(reads)
        reads -= writes
        specs = [(resource, SHARED) for resource in reads]
        specs += [(resource, EXCLUSIVE) for resource in writes]
        specs.sort()
        return specs

    def _expand_view_reads(self, names: set[str]) -> None:
        """Add the underlying tables of every view in *names* (a view
        read locks its base tables; the view name itself stays in the
        set so DDL on the view serializes against readers)."""
        frontier = list(names)
        while frontier:
            view = self.catalog.views.get(frontier.pop())
            if view is None:
                continue
            inner: set[str] = set()
            _collect_table_refs(view.query, inner)
            for key in inner:
                if key not in names:
                    names.add(key)
                    frontier.append(key)

    def _deadline_expired(self) -> None:
        """Abort the running statement: its time budget ran out
        mid-scan.  (Callers gate on ``_statement_deadline`` being set
        so idle engines pay one attribute check per row.)"""
        raise StatementTimeout(
            "statement exceeded its time budget while scanning rows")

    def _parse_cached(self, sql: str) -> ast.Statement:
        """Parse *sql*, reusing the LRU statement cache.

        AST nodes are frozen dataclasses, so a cached statement is
        safe to re-execute; the "parse" fault site keeps firing on
        every execution (the caller hits it before looking here).
        Runs before the engine latch, so the cache has its own lock —
        parsing itself happens outside both.
        """
        with self._stmt_cache_lock:
            cached = self._statement_cache.get(sql)
            if cached is not None:
                self.stats["stmt_cache_hits"] += 1
                if self.obs.enabled:
                    self.obs.metrics.counter("db.stmt_cache.hits",
                                             unit="hits").inc()
                # refresh recency: dicts preserve insertion order
                self._statement_cache.pop(sql)
                self._statement_cache[sql] = cached
                return cached
            self.stats["stmt_cache_misses"] += 1
            if self.obs.enabled:
                self.obs.metrics.counter("db.stmt_cache.misses",
                                         unit="misses").inc()
        parsed = parse_statement(sql)
        with self._stmt_cache_lock:
            if sql not in self._statement_cache:
                if (len(self._statement_cache)
                        >= self.STATEMENT_CACHE_SIZE):
                    self._statement_cache.pop(
                        next(iter(self._statement_cache)))
                self._statement_cache[sql] = parsed
        return parsed

    def _handle_transaction_control(
            self, statement: ast.Statement,
            session: Session) -> Result | None:
        """Run BEGIN/COMMIT/ROLLBACK/SAVEPOINT; None for anything else.

        These are dispatched before fault injection on purpose:
        recovery must stay possible while faults are armed.
        """
        if isinstance(statement, ast.BeginTransaction):
            session.begin()
            return Result(message="Transaction started.")
        if isinstance(statement, ast.CommitStmt):
            session.commit()
            return Result(message="Commit complete.")
        if isinstance(statement, ast.RollbackStmt):
            session.rollback(to=statement.savepoint)
            return Result(message="Rollback complete.")
        if isinstance(statement, ast.SavepointStmt):
            session.savepoint(statement.name)
            return Result(
                message=f"Savepoint {statement.name} established.")
        if isinstance(statement, ast.SetTransaction):
            session.set_transaction(read_only=statement.read_only,
                                    isolation=statement.isolation)
            return Result(message="Transaction set.")
        return None

    # -- transactions -----------------------------------------------------------------
    # The database-level API drives the implicit default session, so
    # single-threaded code (and SQL scripts) keeps working unchanged.

    @property
    def in_transaction(self) -> bool:
        return self._default_session.in_transaction

    def begin(self) -> None:
        """Open an explicit transaction (autocommit until then)."""
        self._default_session.begin()

    def commit(self) -> None:
        """Make the open transaction's work permanent (no-op when
        none is open, like Oracle's COMMIT)."""
        self._default_session.commit()

    def rollback(self, to: str | None = None) -> None:
        """Undo the open transaction, or just back to savepoint *to*."""
        self._default_session.rollback(to)

    def savepoint(self, name: str) -> None:
        """Establish a named savepoint (implicitly opening a
        transaction when none is active, as DML does in Oracle)."""
        self._default_session.savepoint(name)

    def transaction(self):
        """``with db.transaction():`` — commit on success, roll back
        on any exception."""
        return self._default_session.transaction()

    def atomic(self):
        """An all-or-nothing scope that nests: a full transaction at
        the outermost level, a uniquely-named savepoint inside an
        already-open transaction."""
        return self._default_session.atomic()

    def _record(self, undo) -> None:
        """Log an inverse operation into the running statement."""
        if self._active_journal is not None:
            self._active_journal.record(undo)

    def executescript(self, script: str) -> list[Result]:
        """Execute a multi-statement SQL script (Section 4: the
        generated script runs 'without any modification')."""
        return [self.execute(text) for text in split_statements(script)]

    def explain(self, statement: str | ast.Statement,
                session: Session | None = None) -> QueryPlan:
        """Describe how a statement would run, without running it.

        Accepts SELECT, INSERT, UPDATE and DELETE (plain or wrapped
        in ``EXPLAIN``); anything else raises :class:`NotSupported`.
        Building the plan never touches row data, so the scan/join
        counters in :attr:`stats` stay untouched.  SELECT plans state
        the read mode *session* (default: the session executing the
        EXPLAIN, else the implicit one) would run under — ``SNAPSHOT
        READ @latest``, ``SNAPSHOT READ @<ts>`` for a pinned
        transaction snapshot, or ``LOCKING READ`` with MVCC off.
        """
        if isinstance(statement, str):
            statement = parse_statement(statement)
        if session is None:
            session = self._active_session or self._default_session
        with self._latch:  # plans read the catalog
            return PlanBuilder(
                self, read_mode=self._read_mode(session)
            ).build(statement)

    def _read_mode(self, session: Session) -> str:
        """How a SELECT by *session* reads rows right now."""
        if not self.mvcc:
            return "LOCKING READ"
        txn = session.txn
        if txn is not None and txn.snapshot_ts is not None:
            return f"SNAPSHOT READ @{txn.snapshot_ts}"
        return "SNAPSHOT READ @latest"

    def _explain_statement(self, statement: ast.ExplainStmt) -> Result:
        plan = self.explain(statement.statement)
        rows = [(line,) for line in plan.render().splitlines()]
        return Result(columns=["QUERY PLAN"], rows=rows,
                      rowcount=len(rows), message="EXPLAIN")

    def dereference(self, ref: RefValue) -> ObjectValue | None:
        """Follow a REF; dangling references yield NULL like Oracle.

        Under an MVCC snapshot the target is resolved as of the
        snapshot timestamp: a concurrently updated row dereferences
        to its old image, a deleted one to its tombstoned image —
        and a row deleted *before* the snapshot is dangling."""
        self.stats["derefs"] += 1
        table = self.catalog.tables.get(ref.table)
        if table is None:
            return None
        row = table.data.by_oid(ref.oid)
        snap = self._active_snapshot
        if snap is None:
            if row is None:
                return None
            return self._row_object(table, row)
        if row is None:
            row = table.data.tombstone_by_oid(ref.oid)
            if row is None:
                return None
        if row.pending is not None and row.pending != snap.token:
            snap.saw_pending = True
        values = row.visible_values(snap.ts, snap.token)
        if values is None:
            return None
        return self._row_object(table, row, values)

    def _row_object(self, table: Table, row: Row,
                    values: dict | None = None) -> ObjectValue:
        object_type = self.catalog.object_type(table.of_type)
        if values is None:
            values = row.values
        return ObjectValue(object_type.name, {
            attribute.key: values.get(attribute.key)
            for attribute in object_type.attributes
        })

    # -- DDL: types ---------------------------------------------------------------------

    def _create_type_forward(self,
                             statement: ast.CreateTypeForward) -> Result:
        key = identifiers.normalize(statement.name)
        existed = key in self.catalog.types
        self.catalog.create_forward_type(statement.name)
        if not existed:
            self._record(lambda: self.catalog.types.pop(key, None))
        return Result(message=f"Type {statement.name} declared"
                              f" (incomplete).")

    def _create_object_type(self,
                            statement: ast.CreateObjectType) -> Result:
        attributes = [
            TypeAttribute(name, self.catalog.datatype_from_ref(type_ref))
            for name, type_ref in statement.attributes
        ]
        key = identifiers.normalize(statement.name)
        prior = self.catalog.types.get(key)
        completing = isinstance(prior, ObjectType) and prior.incomplete
        self.catalog.create_object_type(statement.name, attributes,
                                        replace=statement.or_replace)
        if prior is None:
            self._record(lambda: self.catalog.types.pop(key, None))
        elif completing:
            # completion mutates the forward type in place; undo
            # restores the same instance to its incomplete state
            def undo(forward=prior):
                forward.attributes = []
                forward.incomplete = True
            self._record(undo)
        else:  # OR REPLACE swapped the entry
            self._record(
                lambda: self.catalog.types.__setitem__(key, prior))
        return Result(message=f"Type {statement.name} created.")

    def _create_varray_type(self,
                            statement: ast.CreateVarrayType) -> Result:
        element = self.catalog.datatype_from_ref(statement.element)
        self._create_collection(statement.name, element,
                                limit=statement.limit,
                                replace=statement.or_replace)
        return Result(message=f"Type {statement.name} created.")

    def _create_nested_table_type(
            self, statement: ast.CreateNestedTableType) -> Result:
        element = self.catalog.datatype_from_ref(statement.element)
        self._create_collection(statement.name, element, limit=None,
                                replace=statement.or_replace)
        return Result(message=f"Type {statement.name} created.")

    def _create_collection(self, name: str, element, limit: int | None,
                           replace: bool) -> None:
        key = identifiers.normalize(name)
        prior = self.catalog.types.get(key)
        self.catalog.create_collection_type(name, element, limit=limit,
                                            replace=replace)
        if prior is None:
            self._record(lambda: self.catalog.types.pop(key, None))
        else:
            self._record(
                lambda: self.catalog.types.__setitem__(key, prior))

    def _drop_type(self, statement: ast.DropType) -> Result:
        types_before = dict(self.catalog.types)
        tables_before = dict(self.catalog.tables)
        removed = self.catalog.drop_type(statement.name, statement.force)

        def undo():
            self.catalog.types.clear()
            self.catalog.types.update(types_before)
            self.catalog.tables.clear()
            self.catalog.tables.update(tables_before)

        self._record(undo)
        return Result(message=f"Type {statement.name} dropped"
                              f" ({len(removed)} object(s)).")

    # -- DDL: tables -----------------------------------------------------------------------

    def _create_table(self, statement: ast.CreateTable) -> Result:
        if statement.of_type is not None:
            table = self._build_object_table(statement)
        else:
            table = self._build_relational_table(statement)
        self._check_nested_storage(statement, table)
        table.indexes = build_auto_indexes(table)
        storage_before = set(self.catalog.storage_names)
        self.catalog.add_table(table)

        def undo():
            self.catalog.tables.pop(table.key, None)
            self.catalog.storage_names.clear()
            self.catalog.storage_names.update(storage_before)

        self._record(undo)
        return Result(message=f"Table {statement.name} created.")

    def _build_relational_table(self,
                                statement: ast.CreateTable) -> Table:
        columns = [
            Column(definition.name,
                   self.catalog.datatype_from_ref(
                       definition.type_ref, allow_incomplete_ref=False))
            for definition in statement.columns
        ]
        table = Table(statement.name, columns)
        for definition in statement.columns:
            self._apply_column_constraints(table, definition.name,
                                           definition.constraints)
        self._apply_table_constraints(table, statement.constraints)
        return table

    def _build_object_table(self, statement: ast.CreateTable) -> Table:
        object_type = self.catalog.object_type(statement.of_type)
        if object_type.incomplete:
            raise IncompleteType(
                f"cannot create a table of incomplete type"
                f" '{statement.of_type}'")
        columns = [
            Column(attribute.name, attribute.datatype)
            for attribute in object_type.attributes
        ]
        table = Table(statement.name, columns, of_type=object_type.key)
        for spec in statement.object_specs:
            if table.column(spec.column) is None:
                raise NoSuchColumn(
                    f"'{spec.column}' is not an attribute of"
                    f" {object_type.name}")
            self._apply_column_constraints(table, spec.column,
                                           spec.constraints)
        self._apply_table_constraints(table, statement.constraints)
        return table

    def _apply_column_constraints(
            self, table: Table, column_name: str,
            constraints: tuple[ast.ColumnConstraint, ...]) -> None:
        column = table.column(column_name)
        assert column is not None
        for constraint in constraints:
            if constraint.kind == "NOT NULL":
                table.constraints.not_null.append(
                    NotNullConstraint(column.key, column.name))
            elif constraint.kind == "PRIMARY KEY":
                if table.constraints.primary_key is not None:
                    raise NotSupported(
                        "table already has a primary key")
                table.constraints.primary_key = PrimaryKeyConstraint(
                    (column.key,))
            elif constraint.kind == "UNIQUE":
                table.constraints.unique.append(
                    UniqueConstraint((column.key,)))

    def _apply_table_constraints(
            self, table: Table,
            constraints: tuple[ast.TableConstraint, ...]) -> None:
        for constraint in constraints:
            if constraint.kind == "PRIMARY KEY":
                if table.constraints.primary_key is not None:
                    raise NotSupported("table already has a primary key")
                table.constraints.primary_key = PrimaryKeyConstraint(
                    tuple(self._column_key(table, name)
                          for name in constraint.columns),
                    constraint.name)
            elif constraint.kind == "UNIQUE":
                table.constraints.unique.append(UniqueConstraint(
                    tuple(self._column_key(table, name)
                          for name in constraint.columns),
                    constraint.name))
            elif constraint.kind == "CHECK":
                assert constraint.expression is not None
                table.constraints.checks.append(CheckConstraint(
                    constraint.expression,
                    constraint.expression_source or "",
                    constraint.name))
            elif constraint.kind == "SCOPE":
                self._apply_scope_constraint(table, constraint)

    def _apply_scope_constraint(self, table: Table,
                                constraint: ast.TableConstraint) -> None:
        column = table.column(constraint.columns[0])
        if column is None:
            raise NoSuchColumn(
                f"'{constraint.columns[0]}' is not a column of"
                f" {table.name}")
        if not isinstance(column.datatype, RefType):
            raise TypeMismatch(
                f"SCOPE FOR requires a REF column,"
                f" '{column.name}' is {column.datatype.sql_name()}")
        if identifiers.normalize(constraint.scope_table) == table.key:
            # self-scoped REF (recursive/IDREF structures): the table
            # being created is its own scope target
            scope_table = table
        else:
            scope_table = self.catalog.table(constraint.scope_table)
        if (not scope_table.is_object_table
                or scope_table.of_type != column.datatype.target_key):
            raise TypeMismatch(
                f"SCOPE table '{constraint.scope_table}' is not an"
                f" object table of {column.datatype.target_type}")
        table.constraints.scopes.append(
            ScopeForConstraint(column.key, scope_table.key))

    @staticmethod
    def _column_key(table: Table, name: str) -> str:
        column = table.column(name)
        if column is None:
            raise NoSuchColumn(
                f"'{name}' is not a column of {table.name}")
        return column.key

    def _check_nested_storage(self, statement: ast.CreateTable,
                              table: Table) -> None:
        clauses = {
            identifiers.normalize(clause.column): clause.storage_name
            for clause in statement.nested_table_clauses
        }
        for column in table.columns:
            if isinstance(column.datatype, NestedTableType):
                if column.key not in clauses:
                    raise NestedCollectionNotSupported(
                        f"must specify STORE AS table name for nested"
                        f" table column '{column.name}'")
                table.nested_storage[column.key] = clauses.pop(column.key)
        if clauses:
            extra = ", ".join(clauses)
            raise NoSuchColumn(
                f"NESTED TABLE clause names non-nested column(s):"
                f" {extra}")

    def _drop_table(self, statement: ast.DropTable) -> Result:
        key = identifiers.normalize(statement.name)
        table = self.catalog.tables.get(key)
        storage_before = set(self.catalog.storage_names)
        self.catalog.drop_table(statement.name)

        def undo():
            self.catalog.tables[key] = table
            self.catalog.storage_names.clear()
            self.catalog.storage_names.update(storage_before)

        self._record(undo)
        return Result(message=f"Table {statement.name} dropped.")

    # -- DDL: views -------------------------------------------------------------------------

    def _create_view(self, statement: ast.CreateView) -> Result:
        if statement.column_names:
            star_items = any(
                isinstance(item.expression, ast.Star)
                for item in statement.query.items)
            if (not star_items
                    and len(statement.column_names)
                    != len(statement.query.items)):
                raise NotSupported(
                    "view column list does not match select list")
        view = View(statement.name, statement.query,
                    statement.column_names)
        prior = self.catalog.views.get(view.key)
        self.catalog.add_view(view, replace=statement.or_replace)
        if prior is None:
            self._record(
                lambda: self.catalog.views.pop(view.key, None))
        else:
            self._record(
                lambda: self.catalog.views.__setitem__(view.key, prior))
        return Result(message=f"View {statement.name} created.")

    def _drop_view(self, statement: ast.DropView) -> Result:
        key = identifiers.normalize(statement.name)
        view = self.catalog.views.get(key)
        self.catalog.drop_view(statement.name)
        self._record(
            lambda: self.catalog.views.__setitem__(key, view))
        return Result(message=f"View {statement.name} dropped.")

    # -- DDL: indexes and statistics ---------------------------------------------------------

    def _create_index(self, statement: ast.CreateIndex) -> Result:
        if statement.unique:
            raise NotSupported(
                "CREATE UNIQUE INDEX is not supported; declare a"
                " UNIQUE constraint instead")
        table = self.catalog.table(statement.table)
        name_key = identifiers.normalize(statement.name)
        self.catalog._assert_name_free(name_key)
        for existing in self.catalog.tables.values():
            for other in existing.indexes:
                if identifiers.normalize(other.name) == name_key:
                    raise NameInUse(
                        f"name '{name_key}' is already used by an"
                        f" index on {existing.name}")
        resolved = tuple(self._index_column(table, path)
                         for path in statement.columns)
        columns = tuple(key for key, _ in resolved)
        if statement.using is None:
            index = SortedIndex(name_key, columns)
        else:
            if len(columns) != 1:
                raise NotSupported(
                    f"USING {statement.using} indexes cover exactly"
                    f" one column")
            datatype = resolved[0][1]
            # string columns only: the tokenizers index nothing for
            # non-text values, so a probe over a non-string column
            # would silently diverge from the full-scan evaluators
            if not isinstance(datatype, (Varchar2, CharType, ClobType)):
                raise TypeMismatch(
                    f"USING {statement.using} requires a string"
                    f" column; '{'.'.join(statement.columns[0])}' is"
                    f" {datatype.sql_name()}")
            kind = (FullTextIndex if statement.using == "FULLTEXT"
                    else TrigramIndex)
            index = kind(name_key, columns)
        for row in table.data.rows:
            index.add(row)
        table.indexes.indexes.append(index)

        def undo():
            if index in table.indexes.indexes:
                table.indexes.indexes.remove(index)

        self._record(undo)
        return Result(message=f"Index {statement.name} created.")

    def _index_column(self, table: Table,
                      path: tuple[str, ...]) -> tuple[str, DataType]:
        """Validate one CREATE INDEX column path and return its key
        and resolved datatype.

        Dot-notation paths may only navigate *embedded* object
        attributes: a REF step would make the index key depend on
        another table's rows, which journal-riding maintenance on
        this table cannot see."""
        column = table.column(path[0])
        if column is None:
            raise NoSuchColumn(
                f"'{path[0]}' is not a column of {table.name}")
        keys = [column.key]
        datatype = column.datatype
        for part in path[1:]:
            if isinstance(datatype, RefType):
                raise NotSupported(
                    f"cannot index through REF column"
                    f" '{'.'.join(path)}'; index the target table"
                    f" instead")
            if not isinstance(datatype, ObjectType):
                raise TypeMismatch(
                    f"'{'.'.join(path)}' does not navigate embedded"
                    f" object attributes")
            attribute = datatype.attribute(part)
            if attribute is None:
                raise NoSuchColumn(
                    f"'{part}' is not an attribute of"
                    f" {datatype.name}")
            keys.append(attribute.key)
            datatype = attribute.datatype
        return ".".join(keys), datatype

    def _drop_index(self, statement: ast.DropIndex) -> Result:
        name_key = identifiers.normalize(statement.name)
        for table in self.catalog.tables.values():
            for position, index in enumerate(table.indexes.indexes):
                if identifiers.normalize(index.name) != name_key:
                    continue
                if not index.user_created:
                    raise NotSupported(
                        f"index '{statement.name}' backs a constraint"
                        f" and cannot be dropped")
                owner = table

                def undo(owner=owner, position=position, index=index):
                    owner.indexes.indexes.insert(position, index)

                del table.indexes.indexes[position]
                self._record(undo)
                return Result(
                    message=f"Index {statement.name} dropped.")
        raise NoSuchType(f"index '{statement.name}' does not exist")

    def _analyze(self, statement: ast.Analyze) -> Result:
        table = self.catalog.table(statement.table)
        prior = table.stats
        table.stats = compute_table_stats(table)

        def undo():
            table.stats = prior

        self._record(undo)
        return Result(
            message=f"Table {statement.table} analyzed"
                    f" ({table.stats.row_count} rows).")

    # -- DML: insert -------------------------------------------------------------------------

    def _insert(self, statement: ast.Insert) -> Result:
        key = identifiers.normalize(statement.table)
        if key in self.catalog.views:
            raise NotSupported("INSERT into views is not supported")
        table = self.catalog.table(statement.table)
        self.stats["inserts"] += 1
        if statement.query is not None:
            result = self.execute_select(statement.query, None)
            count = 0
            for row in result.rows:
                self._insert_row(table, statement.columns, list(row))
                count += 1
            return Result(rowcount=count,
                          message=f"{count} row(s) inserted.")
        values = [self.evaluator.eval(value, Env([]))
                  for value in statement.values]
        self._insert_row(table, statement.columns, values)
        return Result(rowcount=1, message="1 row inserted.")

    def _insert_row(self, table: Table, columns: tuple[str, ...],
                    values: list[object]) -> None:
        # INSERT INTO object_table VALUES (Type_X(...)) — a single
        # object of the row type populates all columns at once.  The
        # value's type name disambiguates this from a single-column
        # positional insert.
        if (table.is_object_table and not columns and len(values) == 1
                and isinstance(values[0], ObjectValue)
                and identifiers.normalize(values[0].type_name)
                == table.of_type):
            source = values[0]
            values = [source.get(column.name) for column in table.columns]
        if columns:
            keys = [self._column_key(table, name) for name in columns]
        else:
            keys = table.column_keys()
        if len(values) != len(keys):
            raise WrongArgumentCount(
                f"INSERT supplies {len(values)} values for"
                f" {len(keys)} column(s)")
        row_values: dict[str, object] = {
            column.key: None for column in table.columns}
        for column_key, value in zip(keys, values):
            column = table.column(column_key)
            assert column is not None
            row_values[column_key] = coerce_value(
                value, column.datatype, self.catalog.resolve_type)
        self._enforce_constraints(table, row_values, existing_row=None)
        self.faults.hit("storage", op="insert", table=table.name)
        row = Row(row_values,
                  oid=next_oid() if table.is_object_table else None)
        if self._active_write_set is not None:
            # invisible to other snapshots until the commit stamp; no
            # version image — absence of a visible version IS the
            # pre-insert state
            row.pending = self._active_token
            self._active_write_set.append((table, row))
        table.data.insert(row)
        table.indexes.add_row(row)
        self._data_version += 1

        def undo(row=row):
            table.data.remove_exact(row)
            table.indexes.remove_row(row)
            row.pending = None  # keep commit stamping off undone rows

        self._record(undo)
        self.stats["rows_inserted"] += 1

    # -- constraint enforcement -------------------------------------------------------------

    def _enforce_constraints(self, table: Table,
                             row_values: dict[str, object],
                             existing_row: Row | None) -> None:
        constraints: ConstraintSet = table.constraints
        for column_key in constraints.not_null_columns():
            if row_values.get(column_key) is None:
                raise NullNotAllowed(
                    f"cannot insert NULL into"
                    f" {table.name}.{column_key}")
        if constraints.primary_key is not None:
            self._check_unique(table, row_values,
                               constraints.primary_key.columns,
                               existing_row, "primary key")
        for unique in constraints.unique:
            self._check_unique(table, row_values, unique.columns,
                               existing_row, "unique")
        for check in constraints.checks:
            self._enforce_check(table, row_values, check)
        for scope in constraints.scopes:
            value = row_values.get(scope.column)
            if isinstance(value, RefValue) and value.table != scope.table:
                raise DanglingReference(
                    f"REF in {table.name}.{scope.column} must point"
                    f" into {scope.table}")

    def _check_unique(self, table: Table, row_values: dict[str, object],
                      columns: tuple[str, ...],
                      existing_row: Row | None, kind: str) -> None:
        candidate = tuple(row_values.get(column) for column in columns)
        if all(value is None for value in candidate):
            return
        rows: list[Row] | None = None
        if self.enable_indexes:
            index = table.indexes.covering(columns)
            if index is not None:
                # probe in the index's column order; the bucket is a
                # superset of tuple-equal rows, re-verified below
                probe = tuple(row_values.get(column)
                              for column in index.columns)
                rows = index.lookup(probe)
                if rows is not None:
                    self.stats["index_unique_checks"] += 1
        if rows is None:
            rows = table.data.rows
        for row in rows:
            if row is existing_row:
                continue
            stored = tuple(row.values.get(column) for column in columns)
            if stored == candidate:
                raise UniqueViolation(
                    f"{kind} constraint violated on {table.name}"
                    f"({', '.join(columns)})")

    def _enforce_check(self, table: Table, row_values: dict[str, object],
                       check: CheckConstraint) -> None:
        binding = Binding(table.key, row_values, table, None)
        verdict = self.evaluator.eval_predicate(check.expression,
                                                Env([binding]))
        if verdict is False:
            raise CheckViolation(
                f"check constraint ({check.source}) violated on"
                f" {table.name}")

    # -- DML: update / delete ------------------------------------------------------------------

    def _dml_access(self, table: Table, alias_key: str,
                    where: ast.Expr | None) -> AccessPlan | None:
        """Costed access plan for UPDATE/DELETE row selection (None =
        nothing pushable; plain scan).  Shared with EXPLAIN so the
        rendered DML access path is the one that runs."""
        if where is None:
            return None
        pushed: list[ast.Expr] = []
        for conjunct in _split_conjuncts(where):
            heads: set[str] = set()
            if (_analyze_references(conjunct, heads) and heads
                    and heads <= {alias_key}):
                pushed.append(conjunct)
        if not pushed:
            return None
        return plan_access(table, alias_key, pushed,
                           allow_probes=self.enable_indexes)

    def _dml_candidates(self, table: Table,
                        plan: AccessPlan | None) -> list[Row] | None:
        """Probe candidates for a DML statement (a superset of the
        matches — the full WHERE is still evaluated on every row), or
        None when the plan is a scan."""
        if plan is None or plan.probe is None or not table.data.rows:
            return None
        return self._execute_probe(plan.probe, Env([]))

    def _update(self, statement: ast.Update) -> Result:
        table = self.catalog.table(statement.table)
        alias_key = identifiers.normalize(statement.alias
                                          or statement.table)
        plan = self._dml_access(table, alias_key, statement.where)
        candidates = self._dml_candidates(table, plan)
        count = 0
        for row in (list(table.data.rows) if candidates is None
                    else list(candidates)):
            if (self._statement_deadline is not None
                    and time.monotonic() > self._statement_deadline):
                self._deadline_expired()
            binding = Binding(alias_key, row.values, table, row.oid)
            env = Env([binding])
            if statement.where is not None:
                if self.evaluator.eval_predicate(statement.where,
                                                 env) is not True:
                    continue
            new_values = dict(row.values)
            for target, expression in statement.assignments:
                column_key = self._assignment_target(table, alias_key,
                                                     target)
                column = table.column(column_key)
                assert column is not None
                value = self.evaluator.eval(expression, env)
                new_values[column_key] = coerce_value(
                    value, column.datatype, self.catalog.resolve_type)
            self._enforce_constraints(table, new_values,
                                      existing_row=row)
            self.faults.hit("storage", op="update", table=table.name)
            old_values = dict(row.values)
            pushed = False
            if self._active_write_set is not None:
                self._serial_write_check(row)
                pushed = self._push_version(table, row)
                if pushed:
                    table.data.track_version(row)
                self._active_write_set.append((table, row))

            def undo(row=row, old=old_values, new=new_values,
                     pushed=pushed):
                row.values.clear()
                row.values.update(old)
                table.indexes.update_row(row, new, old)
                if pushed:
                    self._pop_version(table, row)

            self._record(undo)
            row.values.clear()
            row.values.update(new_values)
            table.indexes.update_row(row, old_values, new_values)
            self._data_version += 1
            count += 1
        return Result(rowcount=count,
                      message=f"{count} row(s) updated.")

    @staticmethod
    def _assignment_target(table: Table, alias_key: str,
                           target: ast.ColumnPath) -> str:
        parts = list(target.parts)
        if (len(parts) > 1
                and identifiers.normalize(parts[0]) == alias_key):
            parts = parts[1:]
        if len(parts) != 1:
            raise NotSupported(
                "UPDATE of nested attributes is not supported;"
                " assign a whole object value instead")
        column = table.column(parts[0])
        if column is None:
            raise NoSuchColumn(
                f"'{parts[0]}' is not a column of {table.name}")
        return column.key

    def _delete(self, statement: ast.Delete) -> Result:
        table = self.catalog.table(statement.table)
        alias_key = identifiers.normalize(statement.alias
                                          or statement.table)
        plan = self._dml_access(table, alias_key, statement.where)
        candidates = self._dml_candidates(table, plan)
        candidate_ids = (None if candidates is None
                         else {id(row) for row in candidates})
        doomed: list[tuple[int, Row]] = []
        for index, row in enumerate(table.data.rows):
            if (candidate_ids is not None
                    and id(row) not in candidate_ids):
                # the probe proved the WHERE cannot match this row
                continue
            if statement.where is not None:
                binding = Binding(alias_key, row.values, table, row.oid)
                verdict = self.evaluator.eval_predicate(
                    statement.where, Env([binding]))
                if verdict is not True:
                    continue
            doomed.append((index, row))
        # delete highest index first so positions stay valid; undo
        # entries replay in reverse, reinserting lowest index first
        for index, row in reversed(doomed):
            self.faults.hit("storage", op="delete", table=table.name)
            pushed = False
            if self._active_write_set is not None:
                self._serial_write_check(row)
                # the row leaves the live list but old snapshots must
                # still find it: park it as a tombstone until GC
                # proves no snapshot can reach it
                pushed = self._push_version(table, row)
                row.deleted = True
                table.data.untrack_version(row)
                table.data.tombstones.append(row)
                self._active_write_set.append((table, row))

            def undo(index=index, row=row, pushed=pushed):
                table.data.rows.insert(index, row)
                if row.oid is not None:
                    table.data.oid_index[row.oid] = row
                table.indexes.add_row(row)
                if row.deleted:
                    row.deleted = False
                    table.data.remove_tombstone(row)
                    if pushed:
                        self._pop_version(table, row)
                    if row.versions:
                        table.data.track_version(row)

            del table.data.rows[index]
            if row.oid is not None:
                table.data.oid_index.pop(row.oid, None)
            table.indexes.remove_row(row)
            self._data_version += 1
            self._record(undo)
        return Result(rowcount=len(doomed),
                      message=f"{len(doomed)} row(s) deleted.")

    # -- SELECT ------------------------------------------------------------------------------

    def execute_select(self, statement: ast.SelectStmt,
                       outer_env: Env | None,
                       limit: int | None = None) -> Result:
        if statement.fetch_first is not None:
            # FETCH FIRST is an engine limit: the slice below runs
            # after ORDER BY, and row enumeration only short-circuits
            # when no ordering/grouping forces full materialization
            fetch = statement.fetch_first
            limit = fetch if limit is None else min(limit, fetch)
        if select_scans_vectors(statement):
            self.stats["vector_scans"] += 1
            if self.obs.enabled:
                self.obs.metrics.counter("db.vector_scans",
                                         unit="statements").inc()
        aggregates: list[ast.FunctionCall] = []
        for item in statement.items:
            if not isinstance(item.expression, ast.Star):
                collect_aggregates(item.expression, aggregates)
        if statement.having is not None:
            collect_aggregates(statement.having, aggregates)
        grouped = bool(aggregates or statement.group_by)
        # aggregates consume every qualifying row, so the limit may
        # only trim the grouped output — never the enumeration
        # feeding the aggregates
        environments = self._enumerate_rows(
            statement, outer_env, None if grouped else limit)
        if grouped:
            result = self._grouped_result(statement, environments,
                                          aggregates)
            if limit is not None:
                result.rows = result.rows[:limit]
            return result
        columns, rows = self._project(statement, environments)
        if statement.distinct:
            # DISTINCT collapses rows, so per-row environments no
            # longer line up; ORDER BY falls back to output columns
            # only (Oracle's ORA-01791 restriction)
            rows = _distinct(rows)
            rows = self._order(statement, columns, rows,
                               environments=None)
        else:
            rows = self._order(statement, columns, rows, environments)
        if limit is not None:
            rows = rows[:limit]
        return Result(columns, rows)

    def _enumerate_rows(self, statement: ast.SelectStmt,
                        outer_env: Env | None,
                        limit: int | None) -> list[Env]:
        environments: list[Env] = []
        short_circuit = (limit is not None and statement.order_by == ()
                         and not statement.group_by
                         and not statement.distinct)
        per_level, residual = self._plan_predicates(statement)
        plans = [
            self._level_access(item, pushed)
            for item, pushed in zip(statement.from_items, per_level)
        ]

        def expand(index: int, frames: list[Binding]) -> bool:
            if index == len(statement.from_items):
                env = Env(list(frames), outer_env)
                for conjunct in residual:
                    if self.evaluator.eval_predicate(conjunct,
                                                     env) is not True:
                        return False
                environments.append(env)
                return bool(short_circuit
                            and len(environments) >= (limit or 0))
            item = statement.from_items[index]
            partial = Env(list(frames), outer_env)
            plan = plans[index]
            # the planner reorders pushed conjuncts most-selective
            # first (REF dereferences last); all of them still run
            pushed = (plan.filters if plan is not None
                      else per_level[index])
            for binding in self._bindings_for(item, partial, plan):
                frames.append(binding)
                env = Env(frames, outer_env) if pushed else None
                passed = all(
                    self.evaluator.eval_predicate(conjunct, env) is True
                    for conjunct in pushed)
                done = passed and expand(index + 1, frames)
                frames.pop()
                if done:
                    return True
            return False

        if len(statement.from_items) > 1:
            self.stats["joins"] += len(statement.from_items) - 1
        expand(0, [])
        return environments

    def _plan_predicates(
            self, statement: ast.SelectStmt
    ) -> tuple[list[list[ast.Expr]], list[ast.Expr]]:
        """Split WHERE into AND-conjuncts and push each down to the
        earliest join level where all of its alias references are
        bound.  Only conjuncts that reference nothing but explicit
        from-item aliases (and contain no subqueries) are pushed; the
        rest run after the full row is assembled, preserving SQL
        semantics for correlation and ambiguity checking."""
        levels: list[list[ast.Expr]] = [
            [] for _ in statement.from_items]
        residual: list[ast.Expr] = []
        if statement.where is None or not statement.from_items:
            if statement.where is not None:
                residual.append(statement.where)
            return levels, residual
        alias_level: dict[str, int] = {}
        for index, item in enumerate(statement.from_items):
            name = getattr(item, "alias", None) or getattr(
                item, "name", None)
            if name:
                alias_level[identifiers.normalize(name)] = index
        for conjunct in _split_conjuncts(statement.where):
            heads: set[str] = set()
            pushable = _analyze_references(conjunct, heads)
            if pushable and heads and all(
                    head in alias_level for head in heads):
                level = max(alias_level[head] for head in heads)
                levels[level].append(conjunct)
            else:
                residual.append(conjunct)
        return levels, residual

    def _level_access(self, item: ast.FromItem,
                      pushed: list[ast.Expr]) -> AccessPlan | None:
        """Costed access plan for one FROM item (None = not a plain
        table: views, subqueries and TABLE() plan their own reads)."""
        if not isinstance(item, ast.TableRef):
            return None
        key = identifiers.normalize(item.name)
        if key in self.catalog.views:
            return None
        table = self.catalog.tables.get(key)
        if table is None:  # let _bindings_for raise NoSuchTable
            return None
        alias_key = identifiers.normalize(item.alias or item.name)
        return plan_access(table, alias_key, pushed,
                           allow_probes=self.enable_indexes)

    def _probe_rows(self, probe: ProbeSpec,
                    env: Env) -> list[Row] | None:
        """Candidate rows for *probe*, or None to fall back to a scan.

        Probe expressions are evaluated against the already-bound
        outer rows; a NULL probe value matches nothing (``col =
        NULL`` is never TRUE), an unkeyable value forfeits the probe.
        """
        values = []
        for column in probe.index.columns:
            value = self.evaluator.eval(probe.values[column], env)
            if value is None:
                return []
            values.append(value)
        rows = probe.index.lookup(tuple(values))
        if rows is None:
            return None
        self.stats["index_lookups"] += 1
        if self.obs.enabled:
            self.obs.metrics.counter("db.index_lookups",
                                     unit="lookups").inc()
        return rows

    def _range_probe_rows(self, probe: RangeProbeSpec,
                          env: Env) -> list[Row] | None:
        """Candidate rows for a range/prefix probe, or None to fall
        back to a scan (the sorted index bails out whenever its key
        population cannot answer the bounds safely).  A NULL bound
        matches nothing — ``col >= NULL`` is never TRUE."""
        if probe.prefix is not None:
            rows = probe.index.prefix_lookup(probe.prefix)
        else:
            low = high = None
            if probe.low is not None:
                low = self.evaluator.eval(probe.low, env)
                if low is None:
                    return []
            if probe.high is not None:
                high = self.evaluator.eval(probe.high, env)
                if high is None:
                    return []
            rows = probe.index.range_lookup(low, high,
                                            probe.low_inclusive,
                                            probe.high_inclusive)
        if rows is None:
            return None
        self.stats["range_index_lookups"] += 1
        if self.obs.enabled:
            self.obs.metrics.counter("db.range_index_lookups",
                                     unit="lookups").inc()
        return rows

    def _fulltext_probe_rows(self, probe: FullTextProbeSpec
                             ) -> list[Row]:
        """Candidate rows of a CONTAINS probe — intersected posting
        lists per AND-group, unioned across OR-groups (the residual
        CONTAINS check still runs per row)."""
        rows = probe.index.lookup(probe.groups)
        self.stats["fulltext_lookups"] += 1
        if self.obs.enabled:
            self.obs.metrics.counter("db.fulltext_lookups",
                                     unit="lookups").inc()
        return rows

    def _trigram_probe_rows(self, probe: TrigramProbeSpec
                            ) -> list[Row]:
        """Candidate rows of a trigram LIKE probe; an absent trigram
        proves no row can match (the planner priced that at zero)."""
        rows = probe.index.lookup(probe.trigrams)
        self.stats["trigram_lookups"] += 1
        if self.obs.enabled:
            self.obs.metrics.counter("db.trigram_lookups",
                                     unit="lookups").inc()
        return rows

    def _execute_probe(self, probe, env: Env) -> list[Row] | None:
        if isinstance(probe, RangeProbeSpec):
            return self._range_probe_rows(probe, env)
        if isinstance(probe, FullTextProbeSpec):
            return self._fulltext_probe_rows(probe)
        if isinstance(probe, TrigramProbeSpec):
            return self._trigram_probe_rows(probe)
        return self._probe_rows(probe, env)

    def _bindings_for(self, item: ast.FromItem, env: Env,
                      plan: AccessPlan | None = None):
        """Bindings for one FROM item.

        ``rows_scanned``/``full_scans`` are counted here and only for
        *physical* row visits (table rows — scanned or probed — and
        TABLE() collection elements).  Bindings materialized from a
        view or subquery result are not re-counted: the inner SELECT
        already accounted for the physical work it did, and a view
        answered from the result cache did none at all.
        """
        if isinstance(item, ast.TableRef):
            key = identifiers.normalize(item.name)
            if key in self.catalog.views:
                yield from self._view_bindings(
                    self.catalog.views[key], item.alias)
                return
            table = self.catalog.table(item.name)
            alias_key = identifiers.normalize(item.alias or item.name)
            snap = self._active_snapshot
            rows = table.data.rows
            probe = plan.probe if plan is not None else None
            candidates = None
            if probe is not None and rows:
                candidates = self._execute_probe(probe, env)
            if candidates is not None:
                rows = candidates
                if snap is not None:
                    # indexes cover *current* contents only.  Rows
                    # whose old image this snapshot must read (chained
                    # updates, tombstoned deletes) may be missing from
                    # the bucket, so union them in; pushed conjuncts
                    # are re-checked per binding, so rows whose old
                    # image does NOT match drop out again.
                    extras = table.data.snapshot_extras()
                    if extras:
                        seen = {id(candidate) for candidate in rows}
                        rows = list(rows) + [
                            extra for extra in extras
                            if id(extra) not in seen]
            else:
                self.stats["full_scans"] += 1
                if plan is not None and plan.sargable:
                    # an index could have served this level but the
                    # planner priced it out (or its probe value was
                    # unkeyable at runtime) — observable as a fallback
                    self.stats["planner_full_scan_fallbacks"] += 1
                    if self.obs.enabled:
                        self.obs.metrics.counter(
                            "db.planner_full_scan_fallbacks",
                            unit="scans").inc()
                if snap is not None and table.data.tombstones:
                    # versioned live rows are already in the scan;
                    # deleted ones survive only as tombstones
                    rows = itertools.chain(rows,
                                           list(table.data.tombstones))
            for row in rows:
                self.stats["rows_scanned"] += 1
                if (self._statement_deadline is not None
                        and time.monotonic() > self._statement_deadline):
                    self._deadline_expired()
                if snap is None:
                    yield Binding(alias_key, row.values, table, row.oid)
                    continue
                if row.pending is not None \
                        and row.pending != snap.token:
                    # a 2PL reader would be blocked right here
                    snap.saw_pending = True
                values = row.visible_values(snap.ts, snap.token)
                if values is None:
                    continue
                yield Binding(alias_key, values, table, row.oid)
            return
        if isinstance(item, ast.SubqueryRef):
            result = self.execute_select(item.query, env)
            alias_key = identifiers.normalize(item.alias or "SUBQUERY")
            keys = [identifiers.normalize(name)
                    for name in result.columns]
            for row in result.rows:
                yield Binding(alias_key, dict(zip(keys, row)))
            return
        assert isinstance(item, ast.TableFunctionRef)
        value = self.evaluator.eval(item.expression, env)
        alias_key = identifiers.normalize(item.alias or "COLLECTION")
        if value is None:
            return
        if not isinstance(value, CollectionValue):
            raise TypeMismatch("TABLE() requires a collection value")
        element_type = self._collection_element_type(value)
        for element in value.items:
            self.stats["rows_scanned"] += 1
            if isinstance(element_type, ObjectType):
                columns = {
                    attribute.key: (element.get(attribute.key)
                                    if isinstance(element, ObjectValue)
                                    else None)
                    for attribute in element_type.attributes
                }
            else:
                columns = {"COLUMN_VALUE": element}
            yield Binding(alias_key, columns)

    def _collection_element_type(self, value: CollectionValue):
        datatype = self.catalog.types.get(
            identifiers.normalize(value.type_name))
        if isinstance(datatype, (NestedTableType,)):
            return datatype.element_type
        if datatype is not None and hasattr(datatype, "element_type"):
            return datatype.element_type
        return None

    def _view_result(self, view: View) -> Result:
        """Evaluate *view*'s query, reusing a cached result.

        Current (locking) reads key the cache by data version: any
        DML/DDL/rollback bumps it and the entry dies.  Snapshot reads
        key by ``(view, snapshot ts)`` instead — the rows visible at
        a fixed timestamp never change (GC cannot prune below an
        active snapshot), so the entry stays valid across later
        commits and still serves pinned old snapshots correctly.  A
        transaction reading its own uncommitted writes bypasses the
        shared cache entirely (``snap.cacheable`` False)."""
        snap = self._active_snapshot
        if snap is None:
            cached = self._view_cache.get(view.key)
            if cached is not None and cached[0] == self._data_version:
                self._count_view_cache(hit=True)
                return cached[1]
            self._count_view_cache(hit=False)
            result = self.execute_select(view.query, None)
            self._view_cache[view.key] = (self._data_version, result)
            return result
        if snap.cacheable:
            cached = self._snap_view_cache.get((view.key, snap.ts))
            if cached is not None and cached[0] is view.query:
                self._count_view_cache(hit=True)
                return cached[1]
        self._count_view_cache(hit=False)
        result = self.execute_select(view.query, None)
        if snap.cacheable:
            if len(self._snap_view_cache) >= self.STATEMENT_CACHE_SIZE:
                self._snap_view_cache.pop(
                    next(iter(self._snap_view_cache)))
            self._snap_view_cache[(view.key, snap.ts)] = (view.query,
                                                          result)
        return result

    def _count_view_cache(self, hit: bool) -> None:
        if hit:
            self.stats["view_cache_hits"] += 1
            if self.obs.enabled:
                self.obs.metrics.counter("db.view_cache.hits",
                                         unit="hits").inc()
        else:
            self.stats["view_cache_misses"] += 1
            if self.obs.enabled:
                self.obs.metrics.counter("db.view_cache.misses",
                                         unit="misses").inc()

    def _view_bindings(self, view: View, alias: str | None):
        result = self._view_result(view)
        names = (list(view.column_names)
                 if view.column_names else result.columns)
        keys = [identifiers.normalize(name) for name in names]
        alias_key = identifiers.normalize(alias or view.name)
        for row in result.rows:
            yield Binding(alias_key, dict(zip(keys, row)))

    # -- projection -----------------------------------------------------------------------------

    def _project(self, statement: ast.SelectStmt,
                 environments: list[Env]) -> tuple[list[str], list[tuple]]:
        columns = self._output_columns(statement, environments)
        rows: list[tuple] = []
        for env in environments:
            values: list[object] = []
            for item in statement.items:
                if isinstance(item.expression, ast.Star):
                    values.extend(self._star_values(item.expression, env))
                else:
                    values.append(self.evaluator.eval(item.expression,
                                                      env))
            rows.append(tuple(values))
        return columns, rows

    def _output_columns(self, statement: ast.SelectStmt,
                        environments: list[Env]) -> list[str]:
        columns: list[str] = []
        for index, item in enumerate(statement.items):
            if isinstance(item.expression, ast.Star):
                columns.extend(self._star_columns(item.expression,
                                                  statement,
                                                  environments))
                continue
            if item.alias is not None:
                columns.append(item.alias.upper())
            else:
                columns.append(_derive_column_name(item.expression,
                                                   index))
        return columns

    def _star_columns(self, star: ast.Star, statement: ast.SelectStmt,
                      environments: list[Env]) -> list[str]:
        if environments:
            frames = environments[0].frames
        else:
            frames = [
                binding for item in statement.from_items
                for binding in self._empty_binding(item)
            ]
        names: list[str] = []
        for frame in frames:
            if (star.qualifier is not None
                    and frame.alias_key
                    != identifiers.normalize(star.qualifier)):
                continue
            names.extend(frame.columns.keys())
        return names

    def _empty_binding(self, item: ast.FromItem) -> list[Binding]:
        """Synthesize a zero-row binding so ``SELECT *`` on an empty
        table still reports column names."""
        if isinstance(item, ast.TableRef):
            key = identifiers.normalize(item.name)
            if key in self.catalog.views:
                view = self.catalog.views[key]
                result = self._view_result(view)
                names = (list(view.column_names)
                         if view.column_names else result.columns)
                keys = {identifiers.normalize(n): None for n in names}
                return [Binding(identifiers.normalize(
                    item.alias or view.name), keys)]
            table = self.catalog.table(item.name)
            return [Binding(
                identifiers.normalize(item.alias or item.name),
                {column.key: None for column in table.columns}, table)]
        return []

    def _star_values(self, star: ast.Star, env: Env) -> list[object]:
        values: list[object] = []
        for frame in env.frames:
            if (star.qualifier is not None
                    and frame.alias_key
                    != identifiers.normalize(star.qualifier)):
                continue
            values.extend(frame.columns.values())
        return values

    # -- grouping -----------------------------------------------------------------------------

    def _grouped_result(self, statement: ast.SelectStmt,
                        environments: list[Env],
                        aggregates: list[ast.FunctionCall]) -> Result:
        groups: list[tuple[tuple, list[Env]]] = []
        index_by_key: dict[tuple, int] = {}
        if statement.group_by:
            for env in environments:
                key = tuple(
                    _hashable(self.evaluator.eval(expression, env))
                    for expression in statement.group_by)
                position = index_by_key.get(key)
                if position is None:
                    index_by_key[key] = len(groups)
                    groups.append((key, [env]))
                else:
                    groups[position][1].append(env)
        else:
            groups.append(((), environments))

        columns = [
            item.alias.upper() if item.alias is not None
            else _derive_column_name(item.expression, index)
            for index, item in enumerate(statement.items)
        ]
        rows: list[tuple] = []
        for _key, members in groups:
            values = self._aggregate_values(aggregates, members)
            self.evaluator.aggregate_values = values
            try:
                representative = (members[0] if members
                                  else Env([], None))
                if statement.having is not None:
                    verdict = self.evaluator.eval_predicate(
                        statement.having, representative)
                    if verdict is not True:
                        continue
                row = tuple(
                    self.evaluator.eval(item.expression, representative)
                    for item in statement.items)
            finally:
                self.evaluator.aggregate_values = None
            rows.append(row)
        rows = self._order(statement, columns, rows, environments=None)
        return Result(columns, rows)

    def _aggregate_values(self, aggregates: list[ast.FunctionCall],
                          members: list[Env]) -> dict:
        values: dict[ast.FunctionCall, object] = {}
        for aggregate in aggregates:
            name = aggregate.name.upper()
            if (name == "COUNT" and aggregate.arguments
                    and isinstance(aggregate.arguments[0], ast.Star)):
                values[aggregate] = len(members)
                continue
            if not aggregate.arguments:
                raise NotSupported(f"{name} requires an argument")
            samples = []
            for env in members:
                value = self.evaluator.eval(aggregate.arguments[0], env)
                if value is not None:
                    samples.append(value)
            if aggregate.distinct:
                samples = _distinct_values(samples)
            values[aggregate] = _fold_aggregate(name, samples)
        return values

    # -- ordering -----------------------------------------------------------------------------

    def _order(self, statement: ast.SelectStmt, columns: list[str],
               rows: list[tuple], environments: list[Env] | None
               ) -> list[tuple]:
        """Sort *rows*; *environments* (parallel to *rows*, or None)
        lets ORDER BY evaluate expressions that are not output
        columns against the originating row."""
        if not statement.order_by:
            return rows
        keyed = []
        for position, row in enumerate(rows):
            env = (environments[position]
                   if environments is not None else None)
            keys = []
            for order_item in statement.order_by:
                value = self._order_value(order_item.expression, columns,
                                          row, env)
                keys.append(_SortKey(value, order_item.ascending))
            keyed.append((keys, row))
        keyed.sort(key=lambda pair: pair[0])
        return [row for _keys, row in keyed]

    def _order_value(self, expression: ast.Expr, columns: list[str],
                     row: tuple, env: Env | None = None) -> object:
        if isinstance(expression, ast.Literal) and isinstance(
                expression.value, int):
            position = expression.value
            if not 1 <= position <= len(row):
                raise NoSuchColumn(
                    f"ORDER BY position {position} out of range")
            return row[position - 1]
        if isinstance(expression, ast.ColumnPath) and len(
                expression.parts) == 1:
            wanted = expression.parts[0].upper()
            for index, column in enumerate(columns):
                if column.upper() == wanted:
                    return row[index]
        if env is not None:
            return self.evaluator.eval(expression, env)
        raise NotSupported(
            "ORDER BY supports output column names and positions")

    _HANDLERS = {}


Database._HANDLERS = {
    ast.CreateTypeForward: Database._create_type_forward,
    ast.CreateObjectType: Database._create_object_type,
    ast.CreateVarrayType: Database._create_varray_type,
    ast.CreateNestedTableType: Database._create_nested_table_type,
    ast.CreateTable: Database._create_table,
    ast.CreateView: Database._create_view,
    ast.CreateIndex: Database._create_index,
    ast.DropType: Database._drop_type,
    ast.DropTable: Database._drop_table,
    ast.DropView: Database._drop_view,
    ast.DropIndex: Database._drop_index,
    ast.Analyze: Database._analyze,
    ast.Insert: Database._insert,
    ast.Update: Database._update,
    ast.Delete: Database._delete,
    ast.ExplainStmt: Database._explain_statement,
}

#: DDL that removes or reshapes objects a pinned snapshot may still
#: be reading.  The catalog keeps no version chains, so these abort
#: with SerializationConflict while other sessions hold pinned
#: snapshots (additive DDL and ANALYZE are safe: old snapshots simply
#: never look at the new object).
_DESTRUCTIVE_DDL = (ast.DropTable, ast.DropType, ast.DropView,
                    ast.DropIndex, ast.CreateIndex)


# -- module helpers --------------------------------------------------------------------


def _collect_table_refs(node: object, names: set[str]) -> None:
    """Collect every normalized ``TableRef`` name reachable from
    *node* — FROM items, subqueries (IN/EXISTS/scalar), CAST MULTISET
    and INSERT...SELECT sources alike.  The walk is generic over the
    frozen-dataclass AST so new node kinds are covered by default."""
    if isinstance(node, ast.TableRef):
        names.add(identifiers.normalize(node.name))
        return
    if isinstance(node, (tuple, list)):
        for item in node:
            _collect_table_refs(item, names)
        return
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        for field in dataclasses.fields(node):
            value = getattr(node, field.name)
            if value is None or isinstance(value,
                                           (str, int, float, bool)):
                continue
            _collect_table_refs(value, names)


def _split_conjuncts(expression: ast.Expr) -> list[ast.Expr]:
    """Flatten a WHERE tree into its top-level AND conjuncts."""
    if isinstance(expression, ast.BinaryOp) \
            and expression.operator == "AND":
        return (_split_conjuncts(expression.left)
                + _split_conjuncts(expression.right))
    return [expression]


def _analyze_references(expression: ast.Expr,
                        heads: set[str]) -> bool:
    """Collect qualified-path heads; False when the conjunct is not
    safe to push down (subqueries, unqualified columns, stars)."""
    if isinstance(expression, ast.ColumnPath):
        if len(expression.parts) < 2:
            return False  # unqualified name: resolve with full row
        heads.add(identifiers.normalize(expression.parts[0]))
        return True
    if isinstance(expression, (ast.Literal, ast.DateLiteral)):
        return True
    if isinstance(expression, ast.BinaryOp):
        return (_analyze_references(expression.left, heads)
                and _analyze_references(expression.right, heads))
    if isinstance(expression, ast.UnaryOp):
        return _analyze_references(expression.operand, heads)
    if isinstance(expression, ast.IsNull):
        return _analyze_references(expression.operand, heads)
    if isinstance(expression, ast.Like):
        return (_analyze_references(expression.operand, heads)
                and _analyze_references(expression.pattern, heads)
                and (expression.escape is None
                     or _analyze_references(expression.escape, heads)))
    if isinstance(expression, ast.Between):
        return (_analyze_references(expression.operand, heads)
                and _analyze_references(expression.low, heads)
                and _analyze_references(expression.high, heads))
    if isinstance(expression, ast.InList):
        return (_analyze_references(expression.operand, heads)
                and all(_analyze_references(item, heads)
                        for item in expression.items))
    if isinstance(expression, ast.AttributeAccess):
        return _analyze_references(expression.base, heads)
    if isinstance(expression, ast.FunctionCall):
        if expression.name.upper() in AGGREGATE_FUNCTIONS:
            return False
        return all(_analyze_references(argument, heads)
                   for argument in expression.arguments)
    if isinstance(expression, ast.CaseWhen):
        for condition, value in expression.branches:
            if not (_analyze_references(condition, heads)
                    and _analyze_references(value, heads)):
                return False
        return (expression.default is None
                or _analyze_references(expression.default, heads))
    # subqueries, EXISTS, CAST MULTISET, stars: not pushable
    return False


class _SortKey:
    """Order NULLs last (ASC), honour direction, across mixed types."""

    __slots__ = ("value", "ascending")

    def __init__(self, value: object, ascending: bool):
        self.value = value
        self.ascending = ascending

    def __lt__(self, other: "_SortKey") -> bool:
        a, b = self.value, other.value
        if a is None and b is None:
            return False
        if a is None:
            return not self.ascending
        if b is None:
            return self.ascending
        try:
            less = a < b
        except TypeError:
            less = str(a) < str(b)
        return less if self.ascending else not less

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self.value == other.value


def _derive_column_name(expression: ast.Expr, index: int) -> str:
    if isinstance(expression, ast.ColumnPath):
        return expression.parts[-1].upper()
    if isinstance(expression, ast.AttributeAccess):
        return expression.attribute.upper()
    if isinstance(expression, ast.FunctionCall):
        return expression.name.upper()
    return f"EXPR{index + 1}"


def _distinct(rows: list[tuple]) -> list[tuple]:
    unique: list[tuple] = []
    for row in rows:
        if row not in unique:
            unique.append(row)
    return unique


def _distinct_values(values: list[object]) -> list[object]:
    unique: list[object] = []
    for value in values:
        if value not in unique:
            unique.append(value)
    return unique


def _fold_aggregate(name: str, samples: list[object]) -> object:
    if name == "COUNT":
        return len(samples)
    if not samples:
        return None
    if name == "MIN":
        return min(samples)
    if name == "MAX":
        return max(samples)
    from .expressions import _as_number

    numbers = [_as_number(sample) for sample in samples]
    total = sum(numbers)
    if name == "SUM":
        return total
    assert name == "AVG"
    from decimal import Decimal

    return Decimal(total) / Decimal(len(numbers))


def _hashable(value: object) -> object:
    from .values import render_value

    try:
        hash(value)
    except TypeError:  # pragma: no cover - defensive
        return render_value(value)
    if isinstance(value, (ObjectValue, CollectionValue)):
        return render_value(value)
    return value


