"""Deterministic fault injection for crash-consistency testing.

Every :class:`~repro.ordb.engine.Database` owns a
:class:`FaultInjector` and calls :meth:`FaultInjector.hit` at its
failure-prone boundaries:

* ``parse``     — before a SQL string is parsed;
* ``statement`` — before a parsed statement executes;
* ``lock``      — before each table-lock acquisition (one hit per
  resource the statement locks), modelling contention faults such as
  lock-wait timeouts on a busy server;
* ``storage``   — before each physical row mutation (insert, per-row
  update, per-row delete);
* ``commit``    — at the top of every real COMMIT (one with an open
  transaction), before anything becomes permanent — the crash-just-
  before-durable point;
* ``wal``       — inside the write-ahead log, before each append and
  before each fsync (durable mode only).  Faults whose error carries
  a ``wal_effect`` (:class:`~repro.ordb.errors.TornWrite`,
  :class:`~repro.ordb.errors.ChecksumCorruption`,
  :class:`~repro.ordb.errors.FsyncFailure`) physically damage the
  log file the corresponding way before the error surfaces;
* ``net``       — in the network server, after each request is read
  (``op="recv"``) and before each response is sent (``op="send"``).
  Faults whose error carries a ``net_effect``
  (:class:`~repro.ordb.errors.TornFrame`,
  :class:`~repro.ordb.errors.DroppedConnection`,
  :class:`~repro.ordb.errors.SlowNetwork`) damage the conversation
  the corresponding way — half a frame then hangup, immediate
  hangup, or a long stall.

With no fault armed, a hit only bumps a per-site counter (the counters
double as the sweep index space for exhaustive crash tests: a clean
dry run tells you how many boundaries a workload crosses).  An armed
:class:`Fault` fires **by count** (the N-th matching event), **by
predicate** (any callable on the event), or **seeded-random** (a
per-fault ``random.Random(seed)``, so runs replay exactly).  Firing
raises the fault's error — :class:`TransientEngineFault` by default —
*before* the guarded mutation happens, which is what makes the
injected failure a clean statement/storage boundary crash.

>>> from repro.ordb import Database
>>> db = Database()
>>> _ = db.execute("CREATE TABLE T(a NUMBER)")
>>> fault = db.faults.arm(site="statement", at=1)
>>> db.execute("INSERT INTO T VALUES(1)")
Traceback (most recent call last):
    ...
repro.ordb.errors.TransientEngineFault: ORA-03113: injected fault ...
>>> db.faults.clear()
>>> db.execute("SELECT COUNT(*) FROM T").scalar()  # nothing stored
0

Transaction-control statements other than COMMIT (BEGIN/ROLLBACK/
SAVEPOINT) are exempt from injection: recovery must always be
possible.  COMMIT has its own dedicated ``commit`` site — a commit
that fails before becoming durable is precisely the crash the
recovery tests need to inject — and a fired commit fault leaves the
transaction open, so the caller's rollback path still restores a
clean state.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Callable

from .errors import OrdbError, TransientEngineFault

#: The boundaries the engine guards.
SITES = ("parse", "statement", "lock", "storage", "commit", "wal",
         "net")


@dataclass(frozen=True)
class FaultEvent:
    """One visit to an injection site."""

    site: str
    sequence: int        # 1-based count across all sites
    site_sequence: int   # 1-based count within this site
    context: dict


@dataclass
class Fault:
    """One armed fault.  Fields are triggers; any may combine.

    ``site=None`` matches every site.  ``at`` counts *matching* events
    (after site/predicate filtering) and fires on the ``at``-th one.
    ``rate`` fires each matching event with the given probability from
    a dedicated ``random.Random(seed)``.  ``times`` bounds how often
    the fault fires (``None`` = unlimited).
    """

    site: str | None = None
    at: int | None = None
    predicate: Callable[[FaultEvent], bool] | None = None
    rate: float = 0.0
    seed: int | None = None
    error: Callable[[str], OrdbError] = TransientEngineFault
    times: int | None = 1
    matches: int = 0
    fired: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def should_fire(self, event: FaultEvent) -> bool:
        if self.times is not None and self.fired >= self.times:
            return False
        if self.site is not None and event.site != self.site:
            return False
        if self.predicate is not None and not self.predicate(event):
            return False
        self.matches += 1
        if self.at is not None:
            return self.matches == self.at
        if self.rate > 0.0:
            return self._rng.random() < self.rate
        # no positional trigger at all: fire on every match
        return self.at is None and self.rate == 0.0

    def make_error(self, event: FaultEvent) -> OrdbError:
        return self.error(
            f"injected fault at {event.site} boundary"
            f" #{event.site_sequence} (event #{event.sequence})")


class FaultInjector:
    """Owns the armed faults and boundary counters of one engine."""

    def __init__(self) -> None:
        self._faults: list[Fault] = []
        self.events: dict[str, int] = {}
        self.total_events = 0
        self.fired: list[FaultEvent] = []
        #: called with the event just before a fired fault raises
        #: (the engine hangs its metrics hook here)
        self.on_fire: Callable[[FaultEvent], None] | None = None
        # concurrent sessions hit boundaries from many threads; the
        # counters and per-fault trigger state must update atomically
        # (reentrant: a predicate may consult the injector)
        self._lock = threading.RLock()

    # -- arming ------------------------------------------------------------------

    def arm(self, site: str | None = None, *, at: int | None = None,
            predicate: Callable[[FaultEvent], bool] | None = None,
            rate: float = 0.0, seed: int | None = None,
            error: Callable[[str], OrdbError] = TransientEngineFault,
            times: int | None = 1) -> Fault:
        """Arm and return a new fault (see :class:`Fault`)."""
        if site is not None and site not in SITES:
            raise ValueError(f"unknown fault site {site!r};"
                             f" expected one of {SITES}")
        fault = Fault(site=site, at=at, predicate=predicate, rate=rate,
                      seed=seed, error=error, times=times)
        self._faults.append(fault)
        return fault

    def disarm(self, fault: Fault) -> None:
        if fault in self._faults:
            self._faults.remove(fault)

    def clear(self) -> None:
        """Disarm every fault (counters and history are kept)."""
        self._faults.clear()

    def reset(self) -> None:
        """Disarm everything and zero counters/history."""
        self.clear()
        self.events.clear()
        self.total_events = 0
        self.fired.clear()

    @property
    def armed(self) -> bool:
        return bool(self._faults)

    # -- the hot path ------------------------------------------------------------

    def hit(self, site: str, **context) -> None:
        """Record one boundary visit; raise if an armed fault fires."""
        with self._lock:
            site_count = self.events.get(site, 0) + 1
            self.events[site] = site_count
            self.total_events += 1
            if not self._faults:
                return
            event = FaultEvent(site, self.total_events, site_count,
                               context)
            for fault in self._faults:
                if fault.should_fire(event):
                    fault.fired += 1
                    self.fired.append(event)
                    if self.on_fire is not None:
                        self.on_fire(event)
                    raise fault.make_error(event)
