"""Hash-sharded document store: one router over N embedded engines.

The paper stores every document in a single Oracle instance; the
ROADMAP's north star is a store serving millions of users.  Documents
shard naturally by document id — the loader emits statements whose
rows all carry the doc's ``D<n>``/``D<n>.<m>`` identifiers — so a
:class:`ShardedDatabase` hash-partitions documents across N embedded
:class:`~repro.ordb.engine.Database` engines, each with its own WAL,
checkpoints and recovery, and merges query results at the router:

* **DDL / ANALYZE** broadcast to every shard (each shard holds the
  full schema, so any shard can answer any query over its rows).
* **INSERT** routes to one shard: the shard of the pinned document
  (see :meth:`ShardedDatabase.pin_document`) when a pin is active,
  else a stable hash of the statement.  ``INSERT ... SELECT``
  broadcasts and inserts from each shard's local rows, which keeps
  co-partitioned data co-partitioned.
* **UPDATE / DELETE** route to the pinned shard, else broadcast with
  summed rowcounts.
* **SELECT** routes to the pinned shard, else scatter-gathers: the
  router merges ORDER BY (re-sorting on shard-computed key columns),
  FETCH FIRST (pushed down per shard, re-applied after the merge),
  DISTINCT, and aggregates (decomposed into per-shard partials —
  COUNT/SUM sum, MIN/MAX fold, AVG recombines SUM and COUNT partials
  — including GROUP BY merges on the group key).

Joins are only meaningful when the joined rows are co-partitioned —
true for every document-local query the paper's mapping produces,
since one document's rows always land on one shard.  Cross-shard
HAVING, DISTINCT aggregates and subqueries raise
:class:`~repro.ordb.errors.NotSupported` rather than return silently
wrong answers (pin a document to run them shard-locally).

A durable router (``path=...``) keeps a *router journal* — the
ordered statement log that :meth:`ShardedDatabase.rebalance` replays
onto a fresh set of engines to change the shard count; the journal
grows with the write history (compaction is future work) and lives
beside a small manifest recording the shard count and generation.

>>> db = ShardedDatabase(n_shards=2)
>>> _ = db.execute("CREATE TABLE T(a NUMBER)")   # broadcast
>>> with db.pin_document(1):
...     _ = db.execute("INSERT INTO T VALUES(1)")
>>> with db.pin_document(2):
...     _ = db.execute("INSERT INTO T VALUES(2)")
>>> db.execute("SELECT SUM(t.a) FROM T t").scalar()  # scatter-gather
3
"""

from __future__ import annotations

import contextlib
import dataclasses
import itertools
import json
import os
import pickle
import shutil
import threading
import zlib
from decimal import Decimal
from pathlib import Path
from typing import Callable, Iterator

from repro.obs import Observability

from .checkpoint import verify_integrity
from .engine import (
    Database,
    _derive_column_name,
    _distinct,
    _hashable,
    _SortKey,
)
from .errors import (
    NoSuchSavepoint,
    NotSupported,
    TransactionError,
)
from .expressions import AGGREGATE_FUNCTIONS, collect_aggregates
from .faults import SITES, Fault, FaultEvent, FaultInjector
from .results import Result
from .schema import CompatibilityMode
from .sessions import Session
from .sql import ast
from .sql.lexer import split_statements
from .sql.parser import parse_statement
from .wal import WriteAheadLog

#: AST nodes that embed a subquery — a scatter-gathered SELECT must
#: not contain one (the inner query would see only each shard's rows).
_SUBQUERY_NODES = (ast.InSubquery, ast.Exists, ast.ScalarSubquery,
                   ast.CastMultiset, ast.SubqueryRef)

#: Router-level fault sites; everything else lives in the engines.
_ROUTER_SITES = ("parse", "net")


def shard_of(doc_id: object, n_shards: int) -> int:
    """The stable home shard of *doc_id* (CRC-32 of its text)."""
    return zlib.crc32(str(doc_id).encode("utf-8")) % n_shards


def _walk(node: object) -> Iterator[object]:
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        if dataclasses.is_dataclass(current) and not isinstance(
                current, type):
            for field in dataclasses.fields(current):
                stack.append(getattr(current, field.name))
        elif isinstance(current, (tuple, list)):
            stack.extend(current)


def _has_subquery(statement: ast.SelectStmt) -> bool:
    return any(isinstance(node, _SUBQUERY_NODES)
               for node in _walk(statement))


class RouterFaults:
    """The sharded fault surface: one injector per shard plus a
    router-local injector for the sites the router itself owns
    (``parse`` before routing, ``net`` around each shard dispatch).

    ``arm(..., shard=i)`` targets one engine: engine sites
    (``statement``, ``wal``, ...) arm directly on that shard's
    injector; ``net`` arms a router-local fault that only fires for
    dispatches to that shard.  Without ``shard=``, engine sites arm
    on *every* shard (each counts its own ``at=`` positions).
    """

    SITES = SITES

    def __init__(self, router: "ShardedDatabase"):
        self.router = router
        self.local = FaultInjector()

    def arm(self, site: str | None = None, *, shard: int | None = None,
            predicate: Callable[[FaultEvent], bool] | None = None,
            **kwargs) -> Fault | list[Fault]:
        if shard is not None:
            if site == "net":
                def only_shard(event, _shard=shard, _user=predicate):
                    return (event.context.get("shard") == _shard
                            and (_user is None or _user(event)))
                return self.local.arm(site, predicate=only_shard,
                                      **kwargs)
            if site == "parse":
                raise ValueError(
                    "parse faults fire at the router, before any"
                    " shard is chosen; arm without shard=")
            return self.router.shards[shard].faults.arm(
                site, predicate=predicate, **kwargs)
        if site in _ROUTER_SITES:
            return self.local.arm(site, predicate=predicate, **kwargs)
        return [shard_db.faults.arm(site, predicate=predicate, **kwargs)
                for shard_db in self.router.shards]

    def hit(self, site: str, **context) -> None:
        self.local.hit(site, **context)

    def disarm(self, fault: Fault) -> None:
        self.local.disarm(fault)
        for shard_db in self.router.shards:
            shard_db.faults.disarm(fault)

    def clear(self) -> None:
        self.local.clear()
        for shard_db in self.router.shards:
            shard_db.faults.clear()

    def reset(self) -> None:
        self.local.reset()
        for shard_db in self.router.shards:
            shard_db.faults.reset()

    @property
    def armed(self) -> bool:
        return self.local.armed or any(
            shard_db.faults.armed for shard_db in self.router.shards)

    @property
    def events(self) -> dict[str, int]:
        merged = dict(self.local.events)
        for shard_db in self.router.shards:
            for site, count in shard_db.faults.events.items():
                merged[site] = merged.get(site, 0) + count
        return merged

    @property
    def fired(self) -> list[FaultEvent]:
        events = list(self.local.fired)
        for shard_db in self.router.shards:
            events.extend(shard_db.faults.fired)
        return events

    def for_shard(self, index: int) -> FaultInjector:
        """The raw injector of one shard engine."""
        return self.router.shards[index].faults


class RouterLocks:
    """Just enough of the LockManager surface for the network server:
    cancelling a router session cancels its per-shard sessions."""

    def __init__(self, router: "ShardedDatabase"):
        self.router = router

    def _subs(self, sid: int) -> list[tuple[int, Session]]:
        session = self.router._sessions.get(sid)
        if session is None:
            return []
        return sorted(session._subs.items())

    def cancel(self, sid: int) -> None:
        for index, sub in self._subs(sid):
            self.router.shards[index].locks.cancel(sub.sid)

    def release_all(self, sid: int) -> None:
        for index, sub in self._subs(sid):
            self.router.shards[index].locks.release_all(sub.sid)


class _RouterWal:
    """Aggregate read-only view over the per-shard logs (the CLI
    reports ``wal_appends`` through it; each shard owns the real
    :class:`~repro.ordb.wal.WriteAheadLog`)."""

    def __init__(self, router: "ShardedDatabase"):
        self._router = router

    @property
    def appended(self) -> int:
        return sum(s.wal.appended for s in self._router.shards
                   if s.wal is not None)

    @property
    def bytes_written(self) -> int:
        return sum(s.wal.bytes_written for s in self._router.shards
                   if s.wal is not None)


class ShardedDatabase:
    """A router that partitions documents across embedded engines.

    Mirrors the :class:`~repro.ordb.engine.Database` surface the
    facade, server and CLI use — ``execute``/``session``/``atomic``/
    ``checkpoint``/``stats``/``faults``/``locks`` — so existing code
    runs against a sharded store unchanged.
    """

    MANIFEST = "shards.json"
    JOURNAL = "router.log"
    STATEMENT_CACHE_SIZE = 256

    def __init__(self, n_shards: int = 2,
                 mode: CompatibilityMode = CompatibilityMode.ORACLE9,
                 obs: Observability | None = None,
                 enable_indexes: bool = True,
                 lock_timeout: float = 5.0,
                 commit_latency: float = 0.0,
                 path: str | os.PathLike | None = None,
                 fsync: str = "commit",
                 checkpoint_every: int | None = None,
                 mvcc: bool = True,
                 group_commit: bool | float = False):
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        self.path = Path(path) if path is not None else None
        self.fsync_policy = fsync
        self.mode = mode
        self.mvcc = mvcc
        self._obs = obs if obs is not None else Observability()
        self._engine_kwargs = dict(
            mode=mode, enable_indexes=enable_indexes,
            lock_timeout=lock_timeout, commit_latency=commit_latency,
            fsync=fsync, checkpoint_every=checkpoint_every, mvcc=mvcc,
            group_commit=group_commit)
        self.router_stats: dict[str, int] = {}
        self._reset_router_stats()
        #: the ordered statement log rebalance replays (see module doc)
        self._journal: list[tuple] = []
        self._journal_lock = threading.Lock()
        self._journal_wal: WriteAheadLog | None = None
        self._suppress_journal = False
        self._generation = 0
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
            manifest = self._load_manifest()
            if manifest is not None:
                # an existing store knows its own topology; the
                # n_shards argument only sizes a brand-new one
                n_shards = int(manifest["n_shards"])
                self._generation = int(manifest["generation"])
            else:
                self._write_manifest(n_shards, self._generation)
            # the journal must survive exactly as long as the shard
            # WALs it mirrors, so it follows the same fsync policy
            self._journal_wal = WriteAheadLog(
                self.path / self.JOURNAL, policy=fsync)
            for payload in self._journal_wal.open():
                self._journal.extend(pickle.loads(payload))
        self.n_shards = n_shards
        self.shards: list[Database] = [
            self._open_engine(i, self._generation)
            for i in range(n_shards)]
        self.faults = RouterFaults(self)
        self.locks = RouterLocks(self)
        self._sessions: dict[int, "ShardedSession"] = {}
        self._sessions_lock = threading.Lock()
        self._next_sid = itertools.count(1)
        #: bumped by rebalance so idle sessions drop stale subsessions
        self._topology_version = 0
        self._rebalance_lock = threading.Lock()
        self._pin = threading.local()
        self._stmt_cache: dict[str, ast.Statement] = {}
        self._stmt_cache_lock = threading.Lock()
        self._default_session = self.session(name="router-default")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = str(self.path) if self.path is not None else "memory"
        return (f"<ShardedDatabase n_shards={self.n_shards}"
                f" generation={self._generation} at {where}>")

    # -- engine pool -------------------------------------------------------------------

    def _open_engine(self, index: int, generation: int) -> Database:
        kwargs = dict(self._engine_kwargs)
        kwargs["obs"] = self._obs
        if self.path is not None:
            kwargs["path"] = self._shard_path(index, generation)
        return Database(**kwargs)

    def _shard_path(self, index: int, generation: int) -> Path:
        return self.path / f"gen-{generation}" / f"shard-{index:02d}"

    def _load_manifest(self) -> dict | None:
        manifest = self.path / self.MANIFEST
        if not manifest.exists():
            return None
        return json.loads(manifest.read_text())

    def _write_manifest(self, n_shards: int, generation: int) -> None:
        payload = json.dumps({"n_shards": n_shards,
                              "generation": generation})
        scratch = self.path / (self.MANIFEST + ".tmp")
        scratch.write_text(payload)
        os.replace(scratch, self.path / self.MANIFEST)

    # -- shared surfaces ---------------------------------------------------------------

    @property
    def catalog(self):
        """Shard 0's catalog — DDL broadcasts, so every shard holds
        the identical schema; shard 0 is the representative."""
        return self.shards[0].catalog

    @property
    def obs(self) -> Observability:
        return self._obs

    @obs.setter
    def obs(self, value: Observability) -> None:
        self._obs = value
        for shard_db in self.shards:
            shard_db.obs = value

    @property
    def enable_indexes(self) -> bool:
        return self._engine_kwargs["enable_indexes"]

    @enable_indexes.setter
    def enable_indexes(self, value: bool) -> None:
        self._engine_kwargs["enable_indexes"] = value
        for shard_db in self.shards:
            shard_db.enable_indexes = value

    @property
    def stats(self) -> dict[str, int]:
        merged = dict(self.router_stats)
        for shard_db in self.shards:
            for key, value in shard_db.stats.items():
                merged[key] = merged.get(key, 0) + value
        return merged

    def _reset_router_stats(self) -> None:
        self.router_stats = {
            "router_statements": 0,
            "shard_fanouts": 0,
            "single_shard_routes": 0,
            "broadcasts": 0,
            "rebalances": 0,
        }

    def reset_stats(self) -> None:
        self._reset_router_stats()
        for shard_db in self.shards:
            shard_db.reset_stats()

    @property
    def wal(self) -> _RouterWal | None:
        if self.path is None:
            return None
        return _RouterWal(self)

    @property
    def recovery_info(self) -> dict | None:
        infos = [shard_db.recovery_info for shard_db in self.shards]
        if all(info is None for info in infos):
            return None
        present = [info for info in infos if info is not None]
        return {
            "checkpoint_loaded": any(info["checkpoint_loaded"]
                                     for info in present),
            "transactions_replayed": sum(
                info["transactions_replayed"] for info in present),
            "statements_replayed": sum(
                info["statements_replayed"] for info in present),
            "records_skipped": sum(
                info["records_skipped"] for info in present),
            "torn_bytes_discarded": sum(
                info["torn_bytes_discarded"] for info in present),
            "seconds": max(info["seconds"] for info in present),
            "shards": infos,
        }

    # -- routing helpers ---------------------------------------------------------------

    @contextlib.contextmanager
    def pin_document(self, doc_id: object):
        """Route every statement of this thread to *doc_id*'s home
        shard while the context is open.  The facade pins around each
        document store/fetch/delete so a document's rows always land
        on — and are read from — one shard."""
        previous = getattr(self._pin, "doc", None)
        self._pin.doc = doc_id
        try:
            yield self.shard_for(doc_id)
        finally:
            self._pin.doc = previous

    def shard_for(self, doc_id: object) -> int:
        """The home shard of *doc_id* under the current topology."""
        return shard_of(doc_id, self.n_shards)

    def pinned_shard(self) -> int | None:
        doc = getattr(self._pin, "doc", None)
        return None if doc is None else self.shard_for(doc)

    def _parse_cached(self, sql: str) -> ast.Statement:
        with self._stmt_cache_lock:
            statement = self._stmt_cache.get(sql)
        if statement is not None:
            return statement
        statement = parse_statement(sql)
        with self._stmt_cache_lock:
            if len(self._stmt_cache) >= self.STATEMENT_CACHE_SIZE:
                self._stmt_cache.pop(next(iter(self._stmt_cache)))
            self._stmt_cache[sql] = statement
        return statement

    def _journal_commit(self, entries: list[tuple]) -> None:
        if not entries or self._suppress_journal:
            return
        with self._journal_lock:
            self._journal.extend(entries)
            if self._journal_wal is not None:
                self._journal_wal.append(pickle.dumps(entries))

    # -- sessions and execution --------------------------------------------------------

    def session(self, name: str = "") -> "ShardedSession":
        session = ShardedSession(self, next(self._next_sid), name)
        with self._sessions_lock:
            self._sessions[session.sid] = session
        return session

    def _session_closed(self, session: "ShardedSession") -> None:
        with self._sessions_lock:
            self._sessions.pop(session.sid, None)

    def execute(self, statement: str | ast.Statement,
                session: "ShardedSession | None" = None) -> Result:
        return (session or self._default_session).execute(statement)

    def executescript(self, script: str) -> list[Result]:
        return [self.execute(text) for text in split_statements(script)]

    def explain(self, statement: str | ast.Statement,
                session: "ShardedSession | None" = None):
        """Explain against one representative shard (the pinned
        document's shard when a pin is active, else shard 0) — every
        shard holds the same schema and indexes, so the plan shape is
        the same; only per-shard row counts differ."""
        index = self.pinned_shard()
        return self.shards[index if index is not None else 0].explain(
            statement)

    @property
    def in_transaction(self) -> bool:
        return self._default_session.in_transaction

    def begin(self) -> None:
        self._default_session.begin()

    def commit(self) -> None:
        self._default_session.commit()

    def rollback(self, to: str | None = None) -> None:
        self._default_session.rollback(to)

    def savepoint(self, name: str) -> None:
        self._default_session.savepoint(name)

    def transaction(self):
        return self._default_session.transaction()

    def atomic(self):
        return self._default_session.atomic()

    # -- durability --------------------------------------------------------------------

    def checkpoint(self) -> dict:
        infos = [shard_db.checkpoint() for shard_db in self.shards]
        merged = {"shards": infos}
        for key in ("bytes", "tables", "rows"):
            if infos and key in infos[0]:
                merged[key] = sum(info[key] for info in infos)
        return merged

    def vacuum(self) -> dict:
        merged: dict[str, int] = {}
        for shard_db in self.shards:
            for key, value in shard_db.vacuum().items():
                merged[key] = merged.get(key, 0) + value
        return merged

    def mvcc_info(self) -> dict:
        infos = [shard_db.mvcc_info() for shard_db in self.shards]
        return {
            "enabled": self.mvcc,
            "version_records": sum(i["version_records"] for i in infos),
            "tombstones": sum(i["tombstones"] for i in infos),
            "shards": infos,
        }

    def dereference(self, ref):
        """Follow a REF; dangling references yield NULL like Oracle.

        A document's rows — and therefore its REF targets — live on
        one shard, and the facade pins reads to the document's home
        shard, so the pinned engine resolves the REF.  Without a pin
        every shard is probed (OIDs are per-engine, so an unpinned
        dereference is best-effort) and the first hit wins."""
        index = self.pinned_shard()
        if index is not None:
            return self.shards[index].dereference(ref)
        for shard_db in self.shards:
            value = shard_db.dereference(ref)
            if value is not None:
                return value
        return None

    def verify(self) -> list[str]:
        """Cross-shard integrity sweep; one line per problem found."""
        problems: list[str] = []
        for index, shard_db in enumerate(self.shards):
            problems.extend(f"shard {index}: {problem}"
                            for problem in verify_integrity(shard_db))
        return problems

    def close(self) -> None:
        with self._sessions_lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            session.close()
        for shard_db in self.shards:
            shard_db.close()
        if self._journal_wal is not None:
            self._journal_wal.close()

    # -- rebalance ---------------------------------------------------------------------

    def rebalance(self, n_shards: int) -> dict:
        """Change the shard count by replaying the router journal
        onto a fresh generation of engines, then atomically adopting
        it (manifest swap for durable stores).  Requires a quiescent
        router: any open transaction raises
        :class:`~repro.ordb.errors.TransactionError`.
        """
        if n_shards < 1:
            raise ValueError("n_shards must be at least 1")
        with self._rebalance_lock:
            with self._sessions_lock:
                busy = sorted(s.name for s in self._sessions.values()
                              if s.in_transaction)
            if busy:
                raise TransactionError(
                    "rebalance requires no open transactions;"
                    f" active: {', '.join(busy)}")
            old_shards = self.shards
            old_n, old_generation = self.n_shards, self._generation
            generation = old_generation + 1
            new_shards = [
                Database(**dict(
                    self._engine_kwargs, obs=self._obs,
                    **({"path": self._shard_path(i, generation)}
                       if self.path is not None else {})))
                for i in range(n_shards)]
            with self._journal_lock:
                entries = list(self._journal)
            self.shards, self.n_shards = new_shards, n_shards
            self._topology_version += 1
            self._suppress_journal = True
            try:
                replay = self.session(name="rebalance-replay")
                try:
                    for entry in entries:
                        self._apply_journal_entry(replay, entry)
                finally:
                    replay.close()
            except BaseException:
                self.shards, self.n_shards = old_shards, old_n
                self._topology_version += 1
                for shard_db in new_shards:
                    shard_db.close()
                if self.path is not None:
                    shutil.rmtree(self.path / f"gen-{generation}",
                                  ignore_errors=True)
                raise
            finally:
                self._suppress_journal = False
            self._generation = generation
            if self.path is not None:
                self._write_manifest(n_shards, generation)
            for shard_db in old_shards:
                shard_db.close()
            if self.path is not None:
                shutil.rmtree(self.path / f"gen-{old_generation}",
                              ignore_errors=True)
            self.router_stats["rebalances"] += 1
            return {"n_shards": n_shards, "generation": generation,
                    "entries_replayed": len(entries)}

    def _apply_journal_entry(self, session: "ShardedSession",
                             entry: tuple) -> None:
        kind = entry[0]
        if kind == "doc":
            _, doc_id, source = entry
            with self.pin_document(doc_id):
                session.execute(source)
        else:  # "ddl" / "bcast" / "ins" — routing re-derives the target
            session.execute(entry[1])


class ShardedSession:
    """One logical connection to the router: transaction control and
    savepoints fan out to lazily-opened per-shard sessions.

    Commit is sequential per shard without two-phase commit: on a
    shard commit failure the remaining (uncommitted) shards roll
    back and the error propagates; already-committed shards keep
    their work, exactly like a multi-database client without XA.  The
    facade's per-document compensation (delete on failure) restores
    cross-shard consistency at the document level.
    """

    def __init__(self, router: ShardedDatabase, sid: int,
                 name: str = ""):
        self.router = router
        self.sid = sid
        self.name = name or f"shard-session-{sid}"
        self.closed = False
        self._statement_timeout: float | None = None
        self._subs: dict[int, Session] = {}
        self._topology_version = router._topology_version
        self._txn = False
        self._txn_executed = False
        self._set_txn: tuple | None = None
        #: established savepoints as (name, journal-buffer mark)
        self._savepoints: list[tuple[str, int]] = []
        self._journal_buf: list[tuple] = []
        self._atomic_seq = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else (
            "in transaction" if self._txn else "idle")
        return f"<ShardedSession {self.name} ({state})>"

    # -- per-shard plumbing ------------------------------------------------------------

    @property
    def statement_timeout(self) -> float | None:
        return self._statement_timeout

    @statement_timeout.setter
    def statement_timeout(self, value: float | None) -> None:
        self._statement_timeout = value
        for sub in self._subs.values():
            sub.statement_timeout = value

    def _revalidate(self) -> None:
        if self._topology_version == self.router._topology_version:
            return
        if self._txn:
            raise TransactionError(
                "shard topology changed under an open transaction")
        for sub in self._subs.values():
            sub.close()
        self._subs.clear()
        self._topology_version = self.router._topology_version

    def _sub(self, index: int) -> Session:
        sub = self._subs.get(index)
        if sub is None:
            sub = self.router.shards[index].session(
                name=f"{self.name}@s{index}")
            sub.statement_timeout = self._statement_timeout
            if self._txn:
                # late shards join the open transaction mid-flight:
                # replay BEGIN, SET TRANSACTION and every savepoint
                sub.begin()
                if self._set_txn is not None:
                    read_only, isolation = self._set_txn
                    sub.set_transaction(read_only=read_only,
                                        isolation=isolation)
                for sp_name, _mark in self._savepoints:
                    sub.savepoint(sp_name)
            self._subs[index] = sub
        return sub

    def _dispatch(self, index: int,
                  statement: ast.Statement) -> Result:
        # the router→shard "network" hop; arm("net", shard=i) fires here
        self.router.faults.hit("net", shard=index, op="dispatch",
                               session=self.name)
        if self._txn:
            self._txn_executed = True
        return self._sub(index).execute(statement)

    # -- statement execution -----------------------------------------------------------

    def execute(self, statement: str | ast.Statement) -> Result:
        if self.closed:
            raise TransactionError("session is closed")
        router = self.router
        self._revalidate()
        source = statement
        if isinstance(statement, str):
            router.faults.hit("parse", sql=statement)
            statement = router._parse_cached(statement)
        router.router_stats["router_statements"] += 1
        if isinstance(statement, ast.BeginTransaction):
            self.begin()
            return Result(message="Transaction started.")
        if isinstance(statement, ast.CommitStmt):
            self.commit()
            return Result(message="Commit complete.")
        if isinstance(statement, ast.RollbackStmt):
            self.rollback(to=statement.savepoint)
            return Result(message="Rollback complete.")
        if isinstance(statement, ast.SavepointStmt):
            self.savepoint(statement.name)
            return Result(
                message=f"Savepoint {statement.name} established.")
        if isinstance(statement, ast.SetTransaction):
            self.set_transaction(read_only=statement.read_only,
                                 isolation=statement.isolation)
            return Result(message="Transaction set.")
        return self._route(statement, source)

    def executescript(self, script: str) -> list[Result]:
        return [self.execute(text) for text in split_statements(script)]

    def _route(self, statement: ast.Statement,
               source: str | ast.Statement) -> Result:
        router = self.router
        pinned = router.pinned_shard()
        if isinstance(statement, ast.ExplainStmt):
            return self._dispatch(
                pinned if pinned is not None else 0, statement)
        if isinstance(statement, ast.SelectStmt):
            if router.n_shards == 1:
                return self._dispatch(0, statement)
            if pinned is not None:
                router.router_stats["single_shard_routes"] += 1
                return self._dispatch(pinned, statement)
            return self._scatter_select(statement)
        if isinstance(statement, ast.Insert):
            if statement.query is not None and pinned is None:
                # INSERT ... SELECT inserts from each shard's local
                # rows, preserving co-partitioning
                return self._broadcast(statement, source, "bcast")
            index = (pinned if pinned is not None
                     else self._hash_route(statement))
            result = self._dispatch(index, statement)
            self._journal_write(source)
            return result
        if isinstance(statement, (ast.Update, ast.Delete)):
            if pinned is not None:
                router.router_stats["single_shard_routes"] += 1
                result = self._dispatch(pinned, statement)
                self._journal_write(source)
                return result
            return self._broadcast(statement, source, "bcast")
        # DDL, ANALYZE: every shard holds the full schema
        return self._broadcast(statement, source, "ddl")

    def _hash_route(self, statement: ast.Statement) -> int:
        return zlib.crc32(repr(statement).encode("utf-8")) \
            % self.router.n_shards

    def _journal_write(self, source: str | ast.Statement) -> None:
        router = self.router
        if router._suppress_journal:
            return
        doc = getattr(router._pin, "doc", None)
        entry = (("doc", doc, source) if doc is not None
                 else ("ins", source))
        if self._txn:
            self._journal_buf.append(entry)
        else:
            router._journal_commit([entry])

    def _broadcast(self, statement: ast.Statement,
                   source: str | ast.Statement, kind: str) -> Result:
        router = self.router
        router.router_stats["broadcasts"] += 1
        self._count_fanout()
        entry = (kind, source)
        if self._txn:
            results = [self._dispatch(i, statement)
                       for i in range(router.n_shards)]
            if not router._suppress_journal:
                self._journal_buf.append(entry)
        else:
            # an implicit transaction makes the broadcast atomic:
            # a mid-broadcast failure rolls every shard back
            self.begin()
            try:
                results = [self._dispatch(i, statement)
                           for i in range(router.n_shards)]
                if not router._suppress_journal:
                    self._journal_buf.append(entry)
            except BaseException:
                self.rollback()
                raise
            self.commit()
        total = sum(result.rowcount for result in results)
        if isinstance(statement, ast.Insert):
            message = f"{total} row(s) inserted."
        elif isinstance(statement, ast.Update):
            message = f"{total} row(s) updated."
        elif isinstance(statement, ast.Delete):
            message = f"{total} row(s) deleted."
        else:
            message = results[0].message
        return Result(rowcount=total, message=message)

    def _count_fanout(self) -> None:
        router = self.router
        router.router_stats["shard_fanouts"] += 1
        if router.obs.enabled:
            router.obs.metrics.counter("db.shard_fanouts",
                                       unit="statements").inc()

    # -- scatter-gather SELECT ---------------------------------------------------------

    def _scatter_select(self, statement: ast.SelectStmt) -> Result:
        if _has_subquery(statement):
            raise NotSupported(
                "cross-shard subqueries are not supported; pin a"
                " document (pin_document) to run shard-locally")
        self._count_fanout()
        aggregates: list[ast.FunctionCall] = []
        for item in statement.items:
            if not isinstance(item.expression, ast.Star):
                collect_aggregates(item.expression, aggregates)
        if aggregates or statement.group_by:
            if statement.having is not None:
                raise NotSupported(
                    "cross-shard HAVING is not supported")
            return self._merge_grouped(statement)
        return self._merge_plain(statement)

    def _gather(self, statement: ast.SelectStmt) -> list[Result]:
        return [self._dispatch(i, statement)
                for i in range(self.router.n_shards)]

    def _merge_plain(self, statement: ast.SelectStmt) -> Result:
        # Per ORDER BY item, how the router re-sorts merged rows:
        #   ("pos", i)    — by output column i (resolved here);
        #   ("name", s)   — by output column named s (resolved against
        #                   the shard result, for SELECT * items);
        #   ("hidden", j) — by the j-th shard-computed key column the
        #                   router appends to the projection.
        keymap: list[tuple[str, object]] = []
        hidden: list[ast.Expr] = []
        has_star = any(isinstance(item.expression, ast.Star)
                       for item in statement.items)
        names = None if has_star else [
            item.alias.upper() if item.alias is not None
            else _derive_column_name(item.expression, index)
            for index, item in enumerate(statement.items)]
        for order_item in statement.order_by:
            expression = order_item.expression
            if isinstance(expression, ast.Literal) and isinstance(
                    expression.value, int):
                keymap.append(("pos", expression.value - 1))
                continue
            if isinstance(expression, ast.ColumnPath) \
                    and len(expression.parts) == 1:
                wanted = expression.parts[0].upper()
                if names is not None and wanted in names:
                    keymap.append(("pos", names.index(wanted)))
                    continue
                if names is None:
                    # SELECT *: the name resolves against the
                    # star-expanded shard columns at merge time
                    keymap.append(("name", wanted))
                    continue
            if statement.distinct:
                # mirror the engine: DISTINCT restricts ORDER BY to
                # output columns — dispatch unmodified and let the
                # shard raise its ORA-01791 error
                return self._finish_plain(statement, statement,
                                          keymap=None, hidden=())
            keymap.append(("hidden", len(hidden)))
            hidden.append(expression)
        shard_stmt = statement
        if hidden:
            extra = tuple(
                ast.SelectItem(expression, alias=f"__ORD{index}")
                for index, expression in enumerate(hidden))
            shard_stmt = dataclasses.replace(
                statement, items=statement.items + extra)
        if statement.order_by and statement.fetch_first is None:
            # the router re-sorts anyway; skip the per-shard sort
            # (kept when FETCH FIRST pushes a top-k down)
            shard_stmt = dataclasses.replace(shard_stmt, order_by=())
        return self._finish_plain(statement, shard_stmt, keymap,
                                  tuple(hidden))

    def _finish_plain(self, statement: ast.SelectStmt,
                      shard_stmt: ast.SelectStmt,
                      keymap: list[tuple[str, object]] | None,
                      hidden: tuple) -> Result:
        results = self._gather(shard_stmt)
        n_hidden = len(hidden)
        shard_columns = results[0].columns
        columns = (shard_columns[:len(shard_columns) - n_hidden]
                   if n_hidden else list(shard_columns))
        rows: list[tuple] = []
        for result in results:
            rows.extend(result.rows)
        if statement.distinct:
            rows = _distinct(rows)
        if statement.order_by and keymap is not None:
            resolved: list[tuple[str, int]] = []
            for kind, value in keymap:
                if kind == "name":
                    matches = [index for index, column
                               in enumerate(columns)
                               if column.upper() == value]
                    if not matches:
                        raise NotSupported(
                            f"ORDER BY column {value} is not in the"
                            " scatter-gathered output")
                    resolved.append(("pos", matches[0]))
                elif kind == "hidden":
                    resolved.append(
                        ("pos", len(shard_columns) - n_hidden + value))
                else:
                    resolved.append((kind, value))
            order_by = statement.order_by

            def sort_key(row: tuple) -> list[_SortKey]:
                return [
                    _SortKey(row[index], order_item.ascending)
                    for (_kind, index), order_item
                    in zip(resolved, order_by)]

            rows.sort(key=sort_key)
        if n_hidden:
            width = len(shard_columns) - n_hidden
            rows = [row[:width] for row in rows]
        if statement.fetch_first is not None:
            rows = rows[:statement.fetch_first]
        return Result(columns, rows)

    def _merge_grouped(self, statement: ast.SelectStmt) -> Result:
        group_exprs = list(statement.group_by)
        # Per output item: ("key", group index) or ("agg", spec) where
        # spec = (fold kind, partial column index or (sum, count)).
        plans: list[tuple[str, object]] = []
        partial_items = [
            ast.SelectItem(expression, alias=f"__K{index}")
            for index, expression in enumerate(group_exprs)]
        next_column = len(group_exprs)
        for item in statement.items:
            expression = item.expression
            key_index = self._group_key_index(expression, group_exprs)
            if key_index is not None:
                plans.append(("key", key_index))
                continue
            if (isinstance(expression, ast.FunctionCall)
                    and expression.name.upper() in AGGREGATE_FUNCTIONS
                    and not expression.distinct):
                name = expression.name.upper()
                if name == "AVG":
                    argument = expression.arguments[0]
                    partial_items.append(ast.SelectItem(
                        ast.FunctionCall("SUM", (argument,)),
                        alias=f"__P{next_column}"))
                    partial_items.append(ast.SelectItem(
                        ast.FunctionCall("COUNT", (argument,)),
                        alias=f"__P{next_column + 1}"))
                    plans.append(("agg", ("avg",
                                          (next_column,
                                           next_column + 1))))
                    next_column += 2
                else:
                    partial_items.append(ast.SelectItem(
                        expression, alias=f"__P{next_column}"))
                    fold = {"COUNT": "sum", "SUM": "sum_nullable",
                            "MIN": "min", "MAX": "max"}[name]
                    plans.append(("agg", (fold, next_column)))
                    next_column += 1
                continue
            raise NotSupported(
                "cross-shard aggregates support plain COUNT/SUM/MIN/"
                "MAX/AVG and group keys only; pin a document"
                " (pin_document) to run shard-locally")
        partial = dataclasses.replace(
            statement, items=tuple(partial_items), order_by=(),
            fetch_first=None, distinct=False, having=None)
        results = self._gather(partial)
        n_keys = len(group_exprs)
        merged: dict[tuple, tuple[tuple, list[list]]] = {}
        order: list[tuple] = []
        for result in results:
            for row in result.rows:
                key = tuple(_hashable(value) for value in row[:n_keys])
                slot = merged.get(key)
                if slot is None:
                    slot = (row[:n_keys],
                            [[] for _ in range(len(row) - n_keys)])
                    merged[key] = slot
                    order.append(key)
                for index, value in enumerate(row[n_keys:]):
                    slot[1][index].append(value)
        columns = [
            item.alias.upper() if item.alias is not None
            else _derive_column_name(item.expression, index)
            for index, item in enumerate(statement.items)]
        rows = []
        for key in order:
            key_values, partials = merged[key]
            row = []
            for kind, value in plans:
                if kind == "key":
                    row.append(key_values[value])
                else:
                    row.append(self._fold_partials(value, partials,
                                                   n_keys))
            rows.append(tuple(row))
        rows = self._order_output(statement, columns, rows)
        if statement.fetch_first is not None:
            rows = rows[:statement.fetch_first]
        return Result(columns, rows)

    @staticmethod
    def _group_key_index(expression: ast.Expr,
                         group_exprs: list) -> int | None:
        """The index of the GROUP BY key *expression* denotes, or
        None.  Column references match leniently — ``SELECT t.g ...
        GROUP BY g`` names one column; the engine gets this for free
        by evaluating items against a representative group row."""
        if expression in group_exprs:
            return group_exprs.index(expression)
        if not isinstance(expression, ast.ColumnPath):
            return None
        mine = [part.upper() for part in expression.parts]
        for index, key in enumerate(group_exprs):
            if not isinstance(key, ast.ColumnPath):
                continue
            theirs = [part.upper() for part in key.parts]
            if mine == theirs or ((len(mine) == 1 or len(theirs) == 1)
                                  and mine[-1] == theirs[-1]):
                return index
        return None

    @staticmethod
    def _fold_partials(spec: tuple, partials: list[list],
                       n_keys: int) -> object:
        fold, column = spec
        if fold == "avg":
            sum_column, count_column = column
            total_count = sum(partials[count_column - n_keys])
            if total_count == 0:
                return None
            total = sum(value
                        for value in partials[sum_column - n_keys]
                        if value is not None)
            return Decimal(total) / Decimal(total_count)
        values = partials[column - n_keys]
        if fold == "sum":  # COUNT partials: plain integers
            return sum(values)
        present = [value for value in values if value is not None]
        if not present:
            return None
        if fold == "sum_nullable":
            return sum(present)
        return min(present) if fold == "min" else max(present)

    @staticmethod
    def _order_output(statement: ast.SelectStmt, columns: list[str],
                      rows: list[tuple]) -> list[tuple]:
        """Engine-parity ordering of grouped output: positions and
        output column names only (the engine enforces the same for
        grouped queries), plus structural matches against the items
        (``ORDER BY COUNT(*)`` when ``COUNT(*)`` is an item)."""
        if not statement.order_by:
            return rows
        resolved: list[int] = []
        for order_item in statement.order_by:
            expression = order_item.expression
            index = None
            if isinstance(expression, ast.Literal) and isinstance(
                    expression.value, int):
                if not 1 <= expression.value <= len(columns):
                    raise NotSupported(
                        f"ORDER BY position {expression.value}"
                        " out of range")
                index = expression.value - 1
            elif isinstance(expression, ast.ColumnPath) \
                    and len(expression.parts) == 1:
                wanted = expression.parts[0].upper()
                for position, column in enumerate(columns):
                    if column.upper() == wanted:
                        index = position
                        break
            if index is None:
                for position, item in enumerate(statement.items):
                    if item.expression == expression:
                        index = position
                        break
            if index is None:
                raise NotSupported(
                    "cross-shard grouped ORDER BY supports output"
                    " columns, positions and select-list expressions")
            resolved.append(index)
        keyed = [
            ([_SortKey(row[index], order_item.ascending)
              for index, order_item in zip(resolved,
                                           statement.order_by)], row)
            for row in rows]
        keyed.sort(key=lambda pair: pair[0])
        return [row for _keys, row in keyed]

    # -- transaction control -----------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._txn

    def begin(self) -> None:
        if self._txn:
            raise TransactionError(
                "a transaction is already active;"
                " COMMIT or ROLLBACK first")
        self._revalidate()
        self._txn = True
        self._txn_executed = False
        self._set_txn = None
        self._savepoints = []
        self._journal_buf = []
        for sub in self._subs.values():
            sub.begin()

    def commit(self) -> None:
        if not self._txn:
            for sub in self._subs.values():
                sub.commit()  # no-op commits still release locks
            return
        failure: BaseException | None = None
        for _index, sub in sorted(self._subs.items()):
            if failure is None:
                try:
                    sub.commit()
                except BaseException as error:
                    failure = error
                    # a commit-site fault leaves the shard's
                    # transaction open; undo it before moving on
                    if sub.txn is not None:
                        sub.rollback()
            else:
                sub.rollback()
        buffered, self._journal_buf = self._journal_buf, []
        self._txn = False
        self._set_txn = None
        self._savepoints = []
        if failure is not None:
            raise failure
        self.router._journal_commit(buffered)

    def rollback(self, to: str | None = None) -> None:
        if not self._txn:
            if to is not None:
                raise NoSuchSavepoint(
                    f"savepoint '{to}' never established"
                    f" (no transaction is active)")
            for sub in self._subs.values():
                sub.rollback()
            return
        if to is None:
            for sub in self._subs.values():
                sub.rollback()
            self._txn = False
            self._set_txn = None
            self._savepoints = []
            self._journal_buf = []
            return
        marks = [position for position, (name, _mark)
                 in enumerate(self._savepoints) if name == to]
        if not marks:
            raise NoSuchSavepoint(
                f"savepoint '{to}' never established")
        for sub in self._subs.values():
            sub.rollback(to=to)
        kept = marks[-1]
        del self._journal_buf[self._savepoints[kept][1]:]
        del self._savepoints[kept + 1:]

    def savepoint(self, name: str) -> None:
        if not self._txn:
            self.begin()
        for sub in self._subs.values():
            sub.savepoint(name)
        self._savepoints.append((name, len(self._journal_buf)))

    def set_transaction(self, read_only: bool | None = None,
                        isolation: str | None = None) -> None:
        if self._txn and self._txn_executed:
            raise TransactionError(
                "SET TRANSACTION must be the first statement of a"
                " transaction")
        if not self._txn:
            self.begin()
        previous = self._set_txn or (None, None)
        self._set_txn = (
            read_only if read_only is not None else previous[0],
            isolation if isolation is not None else previous[1])
        for sub in self._subs.values():
            sub.set_transaction(read_only=read_only,
                                isolation=isolation)

    @property
    def isolation_level(self) -> str:
        if self._txn and self._set_txn is not None:
            read_only, isolation = self._set_txn
            if read_only:
                return "READ ONLY"
            if isolation is not None:
                return isolation
        return "READ COMMITTED"

    def txn_status(self) -> dict:
        return {
            "active": self._txn,
            "isolation": self.isolation_level,
            "read_only": bool(self._txn and self._set_txn is not None
                              and self._set_txn[0]),
            # per-shard engines pin their own snapshots; there is no
            # single cluster-wide snapshot timestamp to report
            "snapshot_ts": None,
        }

    @contextlib.contextmanager
    def transaction(self):
        self.begin()
        try:
            yield self
        except BaseException:
            self.rollback()
            raise
        try:
            self.commit()
        except BaseException:
            if self._txn:
                self.rollback()
            raise

    @contextlib.contextmanager
    def atomic(self):
        if not self._txn:
            with self.transaction():
                yield self
            return
        self._atomic_seq += 1
        name = f"ATOMIC${self._atomic_seq}"
        self.savepoint(name)
        try:
            yield self
        except BaseException:
            if self._txn:
                self.rollback(to=name)
            raise

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        if self.closed:
            return
        if self._txn:
            self.rollback()
        for sub in self._subs.values():
            sub.close()
        self._subs.clear()
        self.closed = True
        self.router._session_closed(self)

    def __enter__(self) -> "ShardedSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
