"""Transaction support for the embedded engine: undo journaling.

The engine mutates plain Python structures (catalog dicts, row lists),
so atomicity is implemented with *logical undo logging*: every
mutation appends a closure that exactly reverses it.  Rolling back
replays the journal tail in reverse order, which restores structure
identity — the same ``Table``/``ObjectType`` instances end up back in
the catalog, so REFs and cached lookups stay valid.

Two scopes use the journal:

* **Statement atomicity** — :meth:`repro.ordb.engine.Database.execute`
  opens a scratch journal per statement and unwinds it when the
  statement raises, so a failed multi-row ``INSERT ... SELECT`` (or a
  constraint violation halfway through an ``UPDATE``) never leaves a
  partial statement behind, even in autocommit mode.
* **Explicit transactions** — ``BEGIN``/``COMMIT``/``ROLLBACK`` plus
  named ``SAVEPOINT``/``ROLLBACK TO``, with Oracle's semantics:
  re-declaring a savepoint moves it, rolling back to one preserves it
  and discards later ones, and a failed statement does *not* abort the
  surrounding transaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .errors import NoSuchSavepoint


class UndoJournal:
    """An ordered log of inverse operations."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: list[Callable[[], None]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, undo: Callable[[], None]) -> None:
        self._entries.append(undo)

    def mark(self) -> int:
        """A position to :meth:`undo_to` later (savepoint support)."""
        return len(self._entries)

    def undo_to(self, mark: int = 0) -> None:
        """Pop and run entries (newest first) down to *mark*."""
        while len(self._entries) > mark:
            self._entries.pop()()

    def absorb(self, other: "UndoJournal") -> None:
        """Append *other*'s entries to this journal and empty it."""
        self._entries.extend(other._entries)
        other._entries.clear()


@dataclass
class _Savepoint:
    name: str  # upper-cased
    mark: int
    #: position in :attr:`Transaction.statements` at declaration time
    stmt_mark: int = 0


class Transaction:
    """One explicit transaction: a journal plus named savepoints.

    Alongside the undo journal the transaction keeps
    :attr:`statements` — the *redo* side: every state-changing
    statement that succeeded under it, in order.  A durable engine
    serializes that list into one WAL record at COMMIT; rolling back
    to a savepoint must therefore also discard the statements logged
    since it, or replay would resurrect the undone work.
    """

    def __init__(self) -> None:
        self.journal = UndoJournal()
        #: successful state-changing statements (SQL text or AST),
        #: truncated in lockstep with the journal by savepoints
        self.statements: list = []
        self._savepoints: list[_Savepoint] = []
        #: MVCC write token: stamped onto every row this transaction
        #: mutates (``Row.pending``) so the transaction reads its own
        #: uncommitted writes; assigned by the engine at BEGIN
        self.token: int | None = None
        #: ``(table, row)`` pairs this transaction wrote; at COMMIT
        #: the engine stamps them all with one commit timestamp
        self.write_set: list = []
        #: pinned snapshot timestamp (SET TRANSACTION READ ONLY /
        #: ISOLATION LEVEL SERIALIZABLE); None = statement-level
        #: read consistency (a fresh snapshot per SELECT)
        self.snapshot_ts: int | None = None
        #: True rejects DML/DDL with ORA-01456
        self.read_only = False
        #: "READ COMMITTED" (default) or "SERIALIZABLE"
        self.isolation = "READ COMMITTED"
        #: True once any statement (even a SELECT) ran under this
        #: transaction; SET TRANSACTION is rejected afterwards
        self.executed = False

    def savepoint(self, name: str) -> None:
        """Establish (or move, Oracle-style) the savepoint *name*."""
        key = name.upper()
        self._savepoints = [point for point in self._savepoints
                            if point.name != key]
        self._savepoints.append(_Savepoint(key, self.journal.mark(),
                                           len(self.statements)))

    def rollback_to(self, name: str) -> None:
        """Undo back to *name*; the savepoint itself survives, later
        savepoints are discarded (Oracle semantics)."""
        key = name.upper()
        for index in range(len(self._savepoints) - 1, -1, -1):
            if self._savepoints[index].name == key:
                point = self._savepoints[index]
                self.journal.undo_to(point.mark)
                del self.statements[point.stmt_mark:]
                del self._savepoints[index + 1:]
                return
        raise NoSuchSavepoint(
            f"savepoint '{name}' never established in this transaction")

    def release(self, name: str) -> None:
        """Forget the savepoint *name*, keeping the work since it."""
        key = name.upper()
        self._savepoints = [point for point in self._savepoints
                            if point.name != key]

    def rollback(self) -> None:
        self.journal.undo_to(0)
        self.statements.clear()
        self._savepoints.clear()
