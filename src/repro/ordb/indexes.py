"""Hash indexes over object/heap tables: the query-performance layer.

The paper's CLM2 argument is about how many scans and joins a
dot-notation query costs; the seed engine answered *every* query with
a full nested-loop scan, which buries that signal under O(n) row
visits.  Like the indexed lookups XRecursive and the DOM-based
mappings lean on, this module gives every PRIMARY KEY / UNIQUE
constraint and every scoped REF column (the ID/IDREF columns
XML2Oracle generates) an automatic in-memory hash index:

* :class:`HashIndex` — one index: canonical key tuple -> row bucket;
* :class:`IndexSet` — all indexes of one table, with the maintenance
  entry points the engine journals (add/remove/update ride the undo
  journal, so ROLLBACK and SAVEPOINT leave indexes consistent);
* :func:`build_auto_indexes` — derives the index set from a table's
  constraints at CREATE TABLE time;
* :func:`find_probe` — the index-*selection* pass: match pushed-down
  equality conjuncts against available indexes, shared by the
  executor and by ``EXPLAIN`` so plans show what actually runs.

Keys are *canonical* (:func:`canonical_key`): two values the engine's
``=`` would call equal always land in the same bucket (numbers and
numeric strings unify, dates unify with their ISO rendering,
composites use their content), so an index probe can only ever
*prune* rows — the pushed predicate is still evaluated on every
candidate, and a bucket is a superset of the true matches.
"""

from __future__ import annotations

import datetime
from decimal import Decimal, InvalidOperation

from . import identifiers
from .sql import ast
from .storage import Row
from .values import CollectionValue, ObjectValue, RefValue, content_key

#: Sentinel for NULL components inside a key tuple (``None`` would
#: work too, but an explicit marker keeps buckets self-describing).
_NULL = ("<null>",)


def canonical_key(value: object) -> object:
    """A hashable bucket key; engine-equal values share it.

    The engine's ``=`` (see ``expressions._ordering``) converts
    numeric strings to numbers and falls back to display text for
    date/string mixes; the canonical form folds those conversions in
    so a probe with either representation hits the same bucket.
    Returns an unhashable-safe value or raises nothing: values whose
    content cannot be hashed are reported via :func:`try_key`.
    """
    if value is None:
        return _NULL
    if isinstance(value, str):
        try:
            number = Decimal(value.strip())
        except (InvalidOperation, ArithmeticError, ValueError):
            return value
        if number.is_nan():
            return value
        return number
    if isinstance(value, (int, float, Decimal)):
        # int/float/Decimal hash identically when numerically equal
        return value
    if isinstance(value, datetime.date):
        # the engine compares DATE against strings by ISO display
        return value.isoformat()
    if isinstance(value, (ObjectValue, CollectionValue, RefValue)):
        return content_key(value)
    return value


def try_key(values: tuple) -> tuple | None:
    """Canonical key tuple for *values*, or None when unhashable
    (e.g. a NaN Decimal); such rows go to the overflow list."""
    key = tuple(canonical_key(value) for value in values)
    try:
        hash(key)
    except TypeError:
        return None
    return key


class HashIndex:
    """One hash index: canonical key tuple -> list of rows.

    ``unique`` marks indexes backing PRIMARY KEY / UNIQUE
    constraints; buckets can still momentarily hold several rows
    (canonically-equal but distinct values such as ``'1.0'`` vs
    ``'1'``), so uniqueness is always re-verified on the bucket, not
    assumed.  Rows whose key cannot be hashed live in ``overflow``
    and are appended to every lookup result.
    """

    __slots__ = ("name", "columns", "unique", "buckets", "overflow")

    def __init__(self, name: str, columns: tuple[str, ...],
                 unique: bool = False):
        self.name = name
        self.columns = tuple(columns)
        self.unique = unique
        self.buckets: dict[tuple, list[Row]] = {}
        self.overflow: list[Row] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "UNIQUE " if self.unique else ""
        return (f"<{kind}HashIndex {self.name}"
                f"({', '.join(self.columns)}) {len(self.buckets)} keys>")

    def key_of(self, row: Row) -> tuple | None:
        return try_key(tuple(row.values.get(column)
                             for column in self.columns))

    def add(self, row: Row) -> None:
        key = self.key_of(row)
        if key is None:
            self.overflow.append(row)
            return
        self.buckets.setdefault(key, []).append(row)

    def remove(self, row: Row) -> None:
        """Remove *row* by identity (rows compare equal by value)."""
        key = self.key_of(row)
        bucket = self.overflow if key is None else self.buckets.get(key)
        if bucket is None:
            return
        for position in range(len(bucket) - 1, -1, -1):
            if bucket[position] is row:
                del bucket[position]
                break
        if key is not None and not bucket:
            del self.buckets[key]

    def lookup(self, values: tuple) -> list[Row] | None:
        """Candidate rows for the equality probe, or None when the
        probe values cannot be keyed (caller falls back to a scan).

        The result is a *superset* of the true matches; the caller
        re-evaluates its predicate on every returned row.
        """
        key = try_key(values)
        if key is None:
            return None
        rows = self.buckets.get(key, ())
        if self.overflow:
            return list(rows) + list(self.overflow)
        return list(rows)

    def distinct_keys(self) -> int:
        return len(self.buckets)

    def entry_count(self) -> int:
        return (sum(len(bucket) for bucket in self.buckets.values())
                + len(self.overflow))


class IndexSet:
    """All hash indexes of one table, maintained together."""

    __slots__ = ("indexes",)

    def __init__(self, indexes: list[HashIndex] | None = None):
        self.indexes: list[HashIndex] = list(indexes or [])

    def __iter__(self):
        return iter(self.indexes)

    def __len__(self) -> int:
        return len(self.indexes)

    # -- maintenance (journaled by the engine) ------------------------------------

    def add_row(self, row: Row) -> None:
        for index in self.indexes:
            index.add(row)

    def remove_row(self, row: Row) -> None:
        for index in self.indexes:
            index.remove(row)

    def update_row(self, row: Row, old_values: dict[str, object],
                   new_values: dict[str, object]) -> None:
        """Move *row* between buckets after its values changed from
        *old_values* to *new_values* (also its own inverse, called
        with the dicts swapped when an UPDATE is rolled back)."""
        for index in self.indexes:
            old_key = try_key(tuple(old_values.get(column)
                                    for column in index.columns))
            new_key = try_key(tuple(new_values.get(column)
                                    for column in index.columns))
            if old_key == new_key and old_key is not None:
                continue
            _remove_keyed(index, row, old_key)
            if new_key is None:
                index.overflow.append(row)
            else:
                index.buckets.setdefault(new_key, []).append(row)

    # -- selection ----------------------------------------------------------------

    def best_equality_index(
            self, available: set[str]) -> HashIndex | None:
        """The index to probe given equality conjuncts on *available*
        columns: prefer unique indexes, then fewer columns (a tighter
        bucket per probe is not implied, but fewer evaluations are)."""
        candidates = [index for index in self.indexes
                      if set(index.columns) <= available]
        if not candidates:
            return None
        candidates.sort(key=lambda index: (not index.unique,
                                           len(index.columns)))
        return candidates[0]

    def covering(self, columns: tuple[str, ...]) -> HashIndex | None:
        """The index whose column set is exactly *columns* (used to
        accelerate uniqueness checks), or None."""
        wanted = set(columns)
        for index in self.indexes:
            if set(index.columns) == wanted:
                return index
        return None

    # -- introspection ------------------------------------------------------------

    def verify(self, rows: list[Row]) -> list[str]:
        """Consistency check for tests: every stored row appears in
        every index exactly once, and nothing else does.  Returns a
        list of human-readable problems (empty = consistent)."""
        problems: list[str] = []
        for index in self.indexes:
            seen: dict[int, int] = {}
            for bucket_key, bucket in index.buckets.items():
                for row in bucket:
                    seen[id(row)] = seen.get(id(row), 0) + 1
                    if index.key_of(row) != bucket_key:
                        problems.append(
                            f"{index.name}: row in wrong bucket"
                            f" {bucket_key!r}")
            for row in index.overflow:
                seen[id(row)] = seen.get(id(row), 0) + 1
            for row in rows:
                count = seen.pop(id(row), 0)
                if count != 1:
                    problems.append(
                        f"{index.name}: stored row indexed"
                        f" {count} time(s): {row.values!r}")
            if seen:
                problems.append(
                    f"{index.name}: {len(seen)} stale entr(y/ies) for"
                    f" rows no longer stored")
        return problems


def _remove_keyed(index: HashIndex, row: Row,
                  key: tuple | None) -> None:
    bucket = index.overflow if key is None else index.buckets.get(key)
    if bucket is None:
        return
    for position in range(len(bucket) - 1, -1, -1):
        if bucket[position] is row:
            del bucket[position]
            break
    if key is not None and not bucket:
        index.buckets.pop(key, None)


def build_auto_indexes(table) -> IndexSet:
    """Derive the automatic index set from *table*'s constraints.

    One unique index per PRIMARY KEY / UNIQUE constraint, one
    non-unique index per scoped REF column — the columns XML2Oracle's
    generated schemas key documents and IDREF links on.  Duplicate
    column sets collapse into the first index declared for them.
    """
    indexes: list[HashIndex] = []
    covered: set[tuple[str, ...]] = set()

    def declare(name: str, columns: tuple[str, ...],
                unique: bool) -> None:
        signature = tuple(sorted(columns))
        if signature in covered:
            return
        covered.add(signature)
        indexes.append(HashIndex(name, columns, unique))

    constraints = table.constraints
    if constraints.primary_key is not None:
        declare(f"{table.key}_PK", constraints.primary_key.columns,
                unique=True)
    for position, unique in enumerate(constraints.unique, start=1):
        declare(f"{table.key}_UN{position}", unique.columns,
                unique=True)
    for scope in constraints.scopes:
        declare(f"{table.key}_{scope.column}_REF", (scope.column,),
                unique=False)
    return IndexSet(indexes)


# -- index selection over pushed conjuncts ----------------------------------------


class ProbeSpec:
    """One planned index probe: which index, fed by which expressions.

    ``values`` maps each index column to the expression whose value
    (evaluated against the already-bound outer rows) keys the lookup;
    ``conjuncts`` are the WHERE conjuncts the probe absorbs (still
    re-checked row-by-row, but rendered on the plan's lookup step)."""

    __slots__ = ("index", "values", "conjuncts")

    def __init__(self, index: HashIndex,
                 values: dict[str, ast.Expr],
                 conjuncts: list[ast.Expr]):
        self.index = index
        self.values = values
        self.conjuncts = conjuncts

    @property
    def operation(self) -> str:
        return ("INDEX UNIQUE LOOKUP" if self.index.unique
                else "INDEX LOOKUP")


def find_probe(table, alias_key: str,
               pushed: list[ast.Expr]) -> ProbeSpec | None:
    """Match pushed equality conjuncts against *table*'s indexes.

    A conjunct qualifies when it is ``alias.column = expr`` (either
    side) with ``expr`` computable before this table's rows are bound
    — i.e. it never mentions *alias* itself.  The executor and the
    EXPLAIN plan builder share this function, so the rendered access
    path is exactly the one the executor takes.
    """
    if not pushed or not len(table.indexes):
        return None
    specs: dict[str, tuple[ast.Expr, ast.Expr]] = {}
    for conjunct in pushed:
        if (not isinstance(conjunct, ast.BinaryOp)
                or conjunct.operator != "="):
            continue
        for column_side, value_side in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left)):
            column = _probe_column(column_side, alias_key, table)
            if column is None or column in specs:
                continue
            if _mentions_alias(value_side, alias_key):
                continue
            specs[column] = (value_side, conjunct)
            break
    if not specs:
        return None
    index = table.indexes.best_equality_index(set(specs))
    if index is None:
        return None
    values = {column: specs[column][0] for column in index.columns}
    conjuncts = [specs[column][1] for column in index.columns]
    return ProbeSpec(index, values, conjuncts)


def _probe_column(expression: ast.Expr, alias_key: str,
                  table) -> str | None:
    """The indexed column key when *expression* is ``alias.column``."""
    if (not isinstance(expression, ast.ColumnPath)
            or len(expression.parts) != 2):
        return None
    if identifiers.normalize(expression.parts[0]) != alias_key:
        return None
    column = table.column(expression.parts[1])
    return column.key if column is not None else None


def _mentions_alias(expression: ast.Expr, alias_key: str) -> bool:
    """True when evaluating *expression* needs this table's row (or
    when we cannot tell: unknown node kinds count as mentions, which
    merely forfeits the probe, never correctness)."""
    if isinstance(expression, ast.ColumnPath):
        if len(expression.parts) < 2:
            return True  # unqualified: could resolve to this table
        return identifiers.normalize(expression.parts[0]) == alias_key
    if isinstance(expression, (ast.Literal, ast.DateLiteral)):
        return False
    if isinstance(expression, ast.BinaryOp):
        return (_mentions_alias(expression.left, alias_key)
                or _mentions_alias(expression.right, alias_key))
    if isinstance(expression, ast.UnaryOp):
        return _mentions_alias(expression.operand, alias_key)
    if isinstance(expression, ast.IsNull):
        return _mentions_alias(expression.operand, alias_key)
    if isinstance(expression, ast.Like):
        return (_mentions_alias(expression.operand, alias_key)
                or _mentions_alias(expression.pattern, alias_key)
                or (expression.escape is not None
                    and _mentions_alias(expression.escape, alias_key)))
    if isinstance(expression, ast.Between):
        return (_mentions_alias(expression.operand, alias_key)
                or _mentions_alias(expression.low, alias_key)
                or _mentions_alias(expression.high, alias_key))
    if isinstance(expression, ast.InList):
        return (_mentions_alias(expression.operand, alias_key)
                or any(_mentions_alias(item, alias_key)
                       for item in expression.items))
    if isinstance(expression, ast.FunctionCall):
        return any(_mentions_alias(argument, alias_key)
                   for argument in expression.arguments)
    if isinstance(expression, ast.AttributeAccess):
        return _mentions_alias(expression.base, alias_key)
    if isinstance(expression, ast.Cast):
        return _mentions_alias(expression.operand, alias_key)
    if isinstance(expression, ast.CaseWhen):
        for condition, value in expression.branches:
            if (_mentions_alias(condition, alias_key)
                    or _mentions_alias(value, alias_key)):
                return True
        return (expression.default is not None
                and _mentions_alias(expression.default, alias_key))
    # subqueries and anything unrecognized: assume dependence
    return True
