"""Hash indexes over object/heap tables: the query-performance layer.

The paper's CLM2 argument is about how many scans and joins a
dot-notation query costs; the seed engine answered *every* query with
a full nested-loop scan, which buries that signal under O(n) row
visits.  Like the indexed lookups XRecursive and the DOM-based
mappings lean on, this module gives every PRIMARY KEY / UNIQUE
constraint and every scoped REF column (the ID/IDREF columns
XML2Oracle generates) an automatic in-memory hash index:

* :class:`HashIndex` — one index: canonical key tuple -> row bucket;
* :class:`IndexSet` — all indexes of one table, with the maintenance
  entry points the engine journals (add/remove/update ride the undo
  journal, so ROLLBACK and SAVEPOINT leave indexes consistent);
* :func:`build_auto_indexes` — derives the index set from a table's
  constraints at CREATE TABLE time;
* :func:`find_probe` — the index-*selection* pass: match pushed-down
  equality conjuncts against available indexes, shared by the
  executor and by ``EXPLAIN`` so plans show what actually runs.

Keys are *canonical* (:func:`canonical_key`): two values the engine's
``=`` would call equal always land in the same bucket (numbers and
numeric strings unify, dates unify with their ISO rendering,
composites use their content), so an index probe can only ever
*prune* rows — the pushed predicate is still evaluated on every
candidate, and a bucket is a superset of the true matches.
"""

from __future__ import annotations

import datetime
from bisect import bisect_left, bisect_right
from decimal import Decimal, InvalidOperation

from . import identifiers
from .sql import ast
from .storage import Row
from .values import CollectionValue, ObjectValue, RefValue, content_key

#: Sentinel for NULL components inside a key tuple (``None`` would
#: work too, but an explicit marker keeps buckets self-describing).
_NULL = ("<null>",)


def canonical_key(value: object) -> object:
    """A hashable bucket key; engine-equal values share it.

    The engine's ``=`` (see ``expressions._ordering``) converts
    numeric strings to numbers and falls back to display text for
    date/string mixes; the canonical form folds those conversions in
    so a probe with either representation hits the same bucket.
    Returns an unhashable-safe value or raises nothing: values whose
    content cannot be hashed are reported via :func:`try_key`.
    """
    if value is None:
        return _NULL
    if isinstance(value, str):
        try:
            number = Decimal(value.strip())
        except (InvalidOperation, ArithmeticError, ValueError):
            return value
        if number.is_nan():
            return value
        return number
    if isinstance(value, (int, float, Decimal)):
        # int/float/Decimal hash identically when numerically equal
        return value
    if isinstance(value, datetime.date):
        # the engine compares DATE against strings by ISO display
        return value.isoformat()
    if isinstance(value, (ObjectValue, CollectionValue, RefValue)):
        return content_key(value)
    return value


def try_key(values: tuple) -> tuple | None:
    """Canonical key tuple for *values*, or None when unhashable
    (e.g. a NaN Decimal); such rows go to the overflow list."""
    key = tuple(canonical_key(value) for value in values)
    try:
        hash(key)
    except TypeError:
        return None
    return key


def _column_value(values: dict, column: str) -> object:
    """The indexed value of *column* in a row's value dict.

    ``column`` is either a plain column key or a dot-notation path
    (``ADDR.CITY``) into embedded object values; any step that is
    missing or not an object yields NULL, matching how the engine's
    dot navigation treats absent attributes."""
    if "." not in column:
        return values.get(column)
    parts = column.split(".")
    value: object = values.get(parts[0])
    for part in parts[1:]:
        if not isinstance(value, ObjectValue) or not value.has(part):
            return None
        value = value.get(part)
    return value


class HashIndex:
    """One hash index: canonical key tuple -> list of rows.

    ``unique`` marks indexes backing PRIMARY KEY / UNIQUE
    constraints; buckets can still momentarily hold several rows
    (canonically-equal but distinct values such as ``'1.0'`` vs
    ``'1'``), so uniqueness is always re-verified on the bucket, not
    assumed.  Rows whose key cannot be hashed live in ``overflow``
    and are appended to every lookup result.
    """

    __slots__ = ("name", "columns", "unique", "buckets", "overflow")

    #: user-created indexes (see :class:`SortedIndex`) can be dropped
    #: with DROP INDEX; automatic constraint indexes cannot.
    user_created = False
    #: posting-list indexes (:mod:`~.textindex`) set this True; they
    #: serve CONTAINS/LIKE probes only, never equality or covering
    content = False

    def __init__(self, name: str, columns: tuple[str, ...],
                 unique: bool = False):
        self.name = name
        self.columns = tuple(columns)
        self.unique = unique
        self.buckets: dict[tuple, list[Row]] = {}
        self.overflow: list[Row] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "UNIQUE " if self.unique else ""
        return (f"<{kind}{type(self).__name__} {self.name}"
                f"({', '.join(self.columns)}) {len(self.buckets)} keys>")

    def key_of(self, row: Row) -> tuple | None:
        return try_key(tuple(_column_value(row.values, column)
                             for column in self.columns))

    def key_for_values(self, values: dict[str, object]) -> tuple | None:
        return try_key(tuple(_column_value(values, column)
                             for column in self.columns))

    def add(self, row: Row) -> None:
        self.add_keyed(row, self.key_of(row))

    def add_keyed(self, row: Row, key: tuple | None) -> None:
        if key is None:
            self.overflow.append(row)
            return
        self.buckets.setdefault(key, []).append(row)

    def remove(self, row: Row) -> None:
        """Remove *row* by identity (rows compare equal by value)."""
        self.remove_keyed(row, self.key_of(row))

    def remove_keyed(self, row: Row, key: tuple | None) -> bool:
        bucket = self.overflow if key is None else self.buckets.get(key)
        if bucket is None:
            return False
        for position in range(len(bucket) - 1, -1, -1):
            if bucket[position] is row:
                del bucket[position]
                if key is not None and not bucket:
                    del self.buckets[key]
                return True
        return False

    def lookup(self, values: tuple) -> list[Row] | None:
        """Candidate rows for the equality probe, or None when the
        probe values cannot be keyed (caller falls back to a scan).

        The result is a *superset* of the true matches; the caller
        re-evaluates its predicate on every returned row.
        """
        key = try_key(values)
        if key is None:
            return None
        rows = self.buckets.get(key, ())
        if self.overflow:
            return list(rows) + list(self.overflow)
        return list(rows)

    def distinct_keys(self) -> int:
        return len(self.buckets)

    def entry_count(self) -> int:
        return (sum(len(bucket) for bucket in self.buckets.values())
                + len(self.overflow))


def _key_class(key: tuple) -> str:
    """Classify a canonical key for range-probe safety: single-column
    numeric / string keys are range-orderable within their class;
    NULL keys are 'null' (structurally excluded from range answers —
    SQL three-valued logic); composites and multi-column keys are
    'other' (their presence disables range probes entirely)."""
    if len(key) != 1:
        return "other"
    component = key[0]
    if component == _NULL:
        return "null"
    if isinstance(component, (int, float, Decimal)):
        return "num"
    if isinstance(component, str):
        return "str"
    return "other"


class SortedIndex(HashIndex):
    """A user-created index that also answers *range* probes.

    Hash buckets stay the authoritative store (equality probes work
    exactly as for :class:`HashIndex`); on top, the index keeps eager
    per-class entry counters and lazily-sorted key directories so
    ``<`` / ``>`` / ``BETWEEN`` / prefix-``LIKE`` predicates can be
    answered with a binary search instead of a scan.

    Range answers must be a *superset* of the true matches (the
    pushed predicate is still evaluated per row), but never more than
    sortedness can promise: the engine's comparison falls back to
    display text for mixed type classes, so a range probe bails out
    (returns None -> caller scans) whenever the stored keys mix
    numbers and strings, or contain composite keys.  NULL keys are
    structurally excluded — SQL three-valued logic means no range or
    equality predicate is ever true of NULL.
    """

    __slots__ = ("_dirty", "_num_dir", "_str_dir",
                 "_num_count", "_str_count", "_other_count")

    user_created = True

    def __init__(self, name: str, columns: tuple[str, ...],
                 unique: bool = False):
        super().__init__(name, columns, unique)
        self._dirty = False
        self._num_dir: list = []
        self._str_dir: list[str] = []
        self._num_count = 0
        self._str_count = 0
        self._other_count = 0

    def add_keyed(self, row: Row, key: tuple | None) -> None:
        super().add_keyed(row, key)
        if key is not None:
            self._count(key, +1)

    def remove_keyed(self, row: Row, key: tuple | None) -> bool:
        removed = super().remove_keyed(row, key)
        if removed and key is not None:
            self._count(key, -1)
        return removed

    def _count(self, key: tuple, delta: int) -> None:
        kind = _key_class(key)
        if kind == "null":
            # NULL keys live in their bucket (the unique check needs
            # them) but never enter the range directories: no range
            # or equality predicate is ever TRUE of NULL
            return
        if kind == "num":
            self._num_count += delta
        elif kind == "str":
            self._str_count += delta
        else:
            self._other_count += delta
        self._dirty = True

    def _directories(self) -> tuple[list, list[str]]:
        if self._dirty:
            numbers: list = []
            strings: list[str] = []
            for key in self.buckets:
                kind = _key_class(key)
                if kind == "num":
                    numbers.append(key[0])
                elif kind == "str":
                    strings.append(key[0])
            numbers.sort()
            strings.sort()
            self._num_dir = numbers
            self._str_dir = strings
            self._dirty = False
        return self._num_dir, self._str_dir

    def range_lookup(self, low, high, low_inclusive: bool,
                     high_inclusive: bool) -> list[Row] | None:
        """Candidate rows for ``low <(=) column <(=) high`` (either
        bound may be None = unbounded), a superset of the matches; []
        when the probe is provably empty (a NULL bound); None when
        the stored keys cannot answer it (caller falls back to scan).
        """
        if len(self.columns) != 1 or self._other_count:
            return None
        bounds = []
        for bound in (low, high):
            if bound is None:
                bounds.append(None)
                continue
            key = canonical_key(bound)
            if key is _NULL:
                return []  # x < NULL is UNKNOWN for every row
            kind = _key_class((key,))
            if kind == "other":
                return None
            bounds.append((kind, key))
        kinds = {kind for entry in bounds if entry
                 for kind in (entry[0],)}
        if len(kinds) != 1:
            return None  # unbounded both sides or mixed bound types
        kind = kinds.pop()
        # Mixed stored classes fall back to the engine's display-text
        # comparison, which sortedness within one class cannot model.
        if kind == "num" and self._str_count:
            return None
        if kind == "str" and self._num_count:
            return None
        numbers, strings = self._directories()
        directory = numbers if kind == "num" else strings
        start = 0
        end = len(directory)
        if bounds[0] is not None:
            locate = bisect_left if low_inclusive else bisect_right
            start = locate(directory, bounds[0][1])
        if bounds[1] is not None:
            locate = bisect_right if high_inclusive else bisect_left
            end = locate(directory, bounds[1][1])
        rows: list[Row] = []
        for component in directory[start:end]:
            rows.extend(self.buckets.get((component,), ()))
        rows.extend(self.overflow)
        return rows

    def prefix_lookup(self, prefix: str) -> list[Row] | None:
        """Candidate rows for ``column LIKE 'prefix%...'``; None when
        the stored keys include numbers or composites (the engine
        LIKEs their display text, which string order cannot model)."""
        if (len(self.columns) != 1 or self._other_count
                or self._num_count):
            return None
        _, strings = self._directories()
        rows: list[Row] = []
        position = bisect_left(strings, prefix)
        while position < len(strings):
            component = strings[position]
            if not component.startswith(prefix):
                break
            rows.extend(self.buckets.get((component,), ()))
            position += 1
        rows.extend(self.overflow)
        return rows


class IndexSet:
    """All hash indexes of one table, maintained together."""

    __slots__ = ("indexes",)

    def __init__(self, indexes: list[HashIndex] | None = None):
        self.indexes: list[HashIndex] = list(indexes or [])

    def __iter__(self):
        return iter(self.indexes)

    def __len__(self) -> int:
        return len(self.indexes)

    # -- maintenance (journaled by the engine) ------------------------------------

    def add_row(self, row: Row) -> None:
        for index in self.indexes:
            index.add(row)

    def remove_row(self, row: Row) -> None:
        for index in self.indexes:
            index.remove(row)

    def update_row(self, row: Row, old_values: dict[str, object],
                   new_values: dict[str, object]) -> None:
        """Move *row* between buckets after its values changed from
        *old_values* to *new_values* (also its own inverse, called
        with the dicts swapped when an UPDATE is rolled back)."""
        for index in self.indexes:
            old_key = index.key_for_values(old_values)
            new_key = index.key_for_values(new_values)
            if old_key == new_key and old_key is not None:
                continue
            index.remove_keyed(row, old_key)
            index.add_keyed(row, new_key)

    # -- selection ----------------------------------------------------------------

    def best_equality_index(
            self, available: set[str]) -> HashIndex | None:
        """The index to probe given equality conjuncts on *available*
        columns: prefer unique indexes, then fewer columns (a tighter
        bucket per probe is not implied, but fewer evaluations are)."""
        candidates = [index for index in self.indexes
                      if not index.content
                      and set(index.columns) <= available]
        if not candidates:
            return None
        candidates.sort(key=lambda index: (not index.unique,
                                           len(index.columns)))
        return candidates[0]

    def covering(self, columns: tuple[str, ...]) -> HashIndex | None:
        """The index whose column set is exactly *columns* (used to
        accelerate uniqueness checks), or None."""
        wanted = set(columns)
        for index in self.indexes:
            if not index.content and set(index.columns) == wanted:
                return index
        return None

    # -- introspection ------------------------------------------------------------

    def verify(self, rows: list[Row]) -> list[str]:
        """Consistency check for tests: every stored row appears in
        every index exactly once, and nothing else does.  Returns a
        list of human-readable problems (empty = consistent)."""
        problems: list[str] = []
        for index in self.indexes:
            if index.content:
                # posting-list indexes have no one-entry-per-row
                # contract; they check themselves against a rebuild
                problems.extend(index.verify_rows(rows))
                continue
            seen: dict[int, int] = {}
            for bucket_key, bucket in index.buckets.items():
                for row in bucket:
                    seen[id(row)] = seen.get(id(row), 0) + 1
                    if index.key_of(row) != bucket_key:
                        problems.append(
                            f"{index.name}: row in wrong bucket"
                            f" {bucket_key!r}")
            for row in index.overflow:
                seen[id(row)] = seen.get(id(row), 0) + 1
            for row in rows:
                count = seen.pop(id(row), 0)
                if count != 1:
                    problems.append(
                        f"{index.name}: stored row indexed"
                        f" {count} time(s): {row.values!r}")
            if seen:
                problems.append(
                    f"{index.name}: {len(seen)} stale entr(y/ies) for"
                    f" rows no longer stored")
        return problems


def build_auto_indexes(table) -> IndexSet:
    """Derive the automatic index set from *table*'s constraints.

    One unique index per PRIMARY KEY / UNIQUE constraint, one
    non-unique index per scoped REF column — the columns XML2Oracle's
    generated schemas key documents and IDREF links on.  Duplicate
    column sets collapse into the first index declared for them.
    """
    indexes: list[HashIndex] = []
    covered: set[tuple[str, ...]] = set()

    def declare(name: str, columns: tuple[str, ...],
                unique: bool) -> None:
        signature = tuple(sorted(columns))
        if signature in covered:
            return
        covered.add(signature)
        indexes.append(HashIndex(name, columns, unique))

    constraints = table.constraints
    if constraints.primary_key is not None:
        declare(f"{table.key}_PK", constraints.primary_key.columns,
                unique=True)
    for position, unique in enumerate(constraints.unique, start=1):
        declare(f"{table.key}_UN{position}", unique.columns,
                unique=True)
    for scope in constraints.scopes:
        declare(f"{table.key}_{scope.column}_REF", (scope.column,),
                unique=False)
    return IndexSet(indexes)


# -- index selection over pushed conjuncts ----------------------------------------


class ProbeSpec:
    """One planned index probe: which index, fed by which expressions.

    ``values`` maps each index column to the expression whose value
    (evaluated against the already-bound outer rows) keys the lookup;
    ``conjuncts`` are the WHERE conjuncts the probe absorbs (still
    re-checked row-by-row, but rendered on the plan's lookup step)."""

    __slots__ = ("index", "values", "conjuncts")

    def __init__(self, index: HashIndex,
                 values: dict[str, ast.Expr],
                 conjuncts: list[ast.Expr]):
        self.index = index
        self.values = values
        self.conjuncts = conjuncts

    @property
    def operation(self) -> str:
        return ("INDEX UNIQUE LOOKUP" if self.index.unique
                else "INDEX LOOKUP")


def find_probe(table, alias_key: str,
               pushed: list[ast.Expr]) -> ProbeSpec | None:
    """Match pushed equality conjuncts against *table*'s indexes.

    A conjunct qualifies when it is ``alias.column = expr`` (either
    side) with ``expr`` computable before this table's rows are bound
    — i.e. it never mentions *alias* itself.  The executor and the
    EXPLAIN plan builder share this function, so the rendered access
    path is exactly the one the executor takes.
    """
    if not pushed or not len(table.indexes):
        return None
    specs: dict[str, tuple[ast.Expr, ast.Expr]] = {}
    for conjunct in pushed:
        if (not isinstance(conjunct, ast.BinaryOp)
                or conjunct.operator != "="):
            continue
        for column_side, value_side in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left)):
            column = _probe_column(column_side, alias_key, table)
            if column is None or column in specs:
                continue
            if _mentions_alias(value_side, alias_key):
                continue
            specs[column] = (value_side, conjunct)
            break
    if not specs:
        return None
    index = table.indexes.best_equality_index(set(specs))
    if index is None:
        return None
    values = {column: specs[column][0] for column in index.columns}
    conjuncts = [specs[column][1] for column in index.columns]
    return ProbeSpec(index, values, conjuncts)


class RangeProbeSpec:
    """One planned range probe against a :class:`SortedIndex`.

    ``low``/``high`` are bound *expressions* (evaluated against the
    already-bound outer rows at probe time; None = unbounded), or
    ``prefix`` is the literal prefix of a ``LIKE 'prefix%'`` pattern.
    ``conjuncts`` are the WHERE conjuncts the probe absorbs (still
    re-checked row-by-row)."""

    __slots__ = ("index", "column", "low", "low_inclusive",
                 "high", "high_inclusive", "prefix", "conjuncts")

    def __init__(self, index: SortedIndex, column: str,
                 low: ast.Expr | None, low_inclusive: bool,
                 high: ast.Expr | None, high_inclusive: bool,
                 prefix: str | None, conjuncts: list[ast.Expr]):
        self.index = index
        self.column = column
        self.low = low
        self.low_inclusive = low_inclusive
        self.high = high
        self.high_inclusive = high_inclusive
        self.prefix = prefix
        self.conjuncts = conjuncts

    @property
    def operation(self) -> str:
        return "RANGE INDEX SCAN"


_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _like_prefix(pattern: str) -> str:
    """The literal prefix of a LIKE pattern ('' when it starts with a
    wildcard)."""
    for position, character in enumerate(pattern):
        if character in "%_":
            return pattern[:position]
    return pattern


def find_range_probe(table, alias_key: str,
                     pushed: list[ast.Expr]) -> RangeProbeSpec | None:
    """Match pushed range conjuncts (``<``/``<=``/``>``/``>=``,
    non-negated ``BETWEEN``, prefix ``LIKE``) against *table*'s
    sorted indexes.  Bound expressions must be computable before this
    table's rows are bound.  Both-bounded probes beat one-bounded
    probes beat prefix probes.
    """
    candidates = [index for index in table.indexes
                  if isinstance(index, SortedIndex)
                  and len(index.columns) == 1]
    if not pushed or not candidates:
        return None
    bounds: dict[str, dict] = {}
    for conjunct in pushed:
        if (isinstance(conjunct, ast.BinaryOp)
                and conjunct.operator in _FLIPPED):
            for column_side, value_side, operator in (
                    (conjunct.left, conjunct.right, conjunct.operator),
                    (conjunct.right, conjunct.left,
                     _FLIPPED[conjunct.operator])):
                column = _probe_column(column_side, alias_key, table)
                if column is None:
                    continue
                if _mentions_alias(value_side, alias_key):
                    continue
                entry = bounds.setdefault(column, {})
                side = "low" if operator in (">", ">=") else "high"
                entry.setdefault(side, (value_side,
                                        operator in (">=", "<="),
                                        conjunct))
                break
        elif isinstance(conjunct, ast.Between) and not conjunct.negated:
            column = _probe_column(conjunct.operand, alias_key, table)
            if column is None:
                continue
            if (_mentions_alias(conjunct.low, alias_key)
                    or _mentions_alias(conjunct.high, alias_key)):
                continue
            entry = bounds.setdefault(column, {})
            entry.setdefault("low", (conjunct.low, True, conjunct))
            entry.setdefault("high", (conjunct.high, True, conjunct))
        elif (isinstance(conjunct, ast.Like) and not conjunct.negated
                and conjunct.escape is None
                and isinstance(conjunct.pattern, ast.Literal)
                and isinstance(conjunct.pattern.value, str)):
            column = _probe_column(conjunct.operand, alias_key, table)
            if column is None:
                continue
            prefix = _like_prefix(conjunct.pattern.value)
            if prefix:
                entry = bounds.setdefault(column, {})
                entry.setdefault("prefix", (prefix, conjunct))
    best: tuple[int, RangeProbeSpec] | None = None
    for index in candidates:
        entry = bounds.get(index.columns[0])
        if not entry:
            continue
        low = entry.get("low")
        high = entry.get("high")
        if low is not None or high is not None:
            conjuncts: list[ast.Expr] = []
            for part in (low, high):
                if part is not None and not any(
                        part[2] is seen for seen in conjuncts):
                    conjuncts.append(part[2])
            rank = 0 if (low is not None and high is not None) else 1
            spec = RangeProbeSpec(
                index, index.columns[0],
                low[0] if low else None, low[1] if low else False,
                high[0] if high else None, high[1] if high else False,
                None, conjuncts)
        elif "prefix" in entry:
            prefix, conjunct = entry["prefix"]
            rank = 2
            spec = RangeProbeSpec(index, index.columns[0],
                                  None, False, None, False,
                                  prefix, [conjunct])
        else:
            continue
        if best is None or rank < best[0]:
            best = (rank, spec)
    return best[1] if best is not None else None


def _probe_column(expression: ast.Expr, alias_key: str,
                  table) -> str | None:
    """The indexed column key when *expression* is ``alias.column``
    or a dot-notation path ``alias.column.attr...`` into an embedded
    object column (the form CREATE INDEX accepts)."""
    if (not isinstance(expression, ast.ColumnPath)
            or len(expression.parts) < 2):
        return None
    if identifiers.normalize(expression.parts[0]) != alias_key:
        return None
    column = table.column(expression.parts[1])
    if column is None:
        return None
    if len(expression.parts) == 2:
        return column.key
    tail = [identifiers.normalize(part)
            for part in expression.parts[2:]]
    return ".".join([column.key, *tail])


def _mentions_alias(expression: ast.Expr, alias_key: str) -> bool:
    """True when evaluating *expression* needs this table's row (or
    when we cannot tell: unknown node kinds count as mentions, which
    merely forfeits the probe, never correctness)."""
    if isinstance(expression, ast.ColumnPath):
        if len(expression.parts) < 2:
            return True  # unqualified: could resolve to this table
        return identifiers.normalize(expression.parts[0]) == alias_key
    if isinstance(expression, (ast.Literal, ast.DateLiteral)):
        return False
    if isinstance(expression, ast.BinaryOp):
        return (_mentions_alias(expression.left, alias_key)
                or _mentions_alias(expression.right, alias_key))
    if isinstance(expression, ast.UnaryOp):
        return _mentions_alias(expression.operand, alias_key)
    if isinstance(expression, ast.IsNull):
        return _mentions_alias(expression.operand, alias_key)
    if isinstance(expression, ast.Like):
        return (_mentions_alias(expression.operand, alias_key)
                or _mentions_alias(expression.pattern, alias_key)
                or (expression.escape is not None
                    and _mentions_alias(expression.escape, alias_key)))
    if isinstance(expression, ast.Between):
        return (_mentions_alias(expression.operand, alias_key)
                or _mentions_alias(expression.low, alias_key)
                or _mentions_alias(expression.high, alias_key))
    if isinstance(expression, ast.InList):
        return (_mentions_alias(expression.operand, alias_key)
                or any(_mentions_alias(item, alias_key)
                       for item in expression.items))
    if isinstance(expression, ast.FunctionCall):
        return any(_mentions_alias(argument, alias_key)
                   for argument in expression.arguments)
    if isinstance(expression, ast.AttributeAccess):
        return _mentions_alias(expression.base, alias_key)
    if isinstance(expression, ast.Cast):
        return _mentions_alias(expression.operand, alias_key)
    if isinstance(expression, ast.CaseWhen):
        for condition, value in expression.branches:
            if (_mentions_alias(condition, alias_key)
                    or _mentions_alias(value, alias_key)):
                return True
        return (expression.default is not None
                and _mentions_alias(expression.default, alias_key))
    # subqueries and anything unrecognized: assume dependence
    return True
