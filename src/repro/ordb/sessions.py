"""Sessions: per-connection transaction state over one shared engine.

A :class:`Session` is the unit of concurrency — the stand-in for one
Oracle connection of the paper's client-server setup.  Each session
owns its transaction state (undo journal, savepoints, the ``ATOMIC$n``
nesting counter) while the :class:`~repro.ordb.engine.Database` owns
the shared structures: catalog, rows, indexes, caches and the
:class:`~repro.ordb.locks.LockManager` that isolates sessions from
each other.

Sessions follow strict two-phase locking: statements acquire
table-level S/X locks before touching data, and an explicit
transaction keeps them until COMMIT or ROLLBACK (autocommit
statements release at statement end).  One session must only ever be
driven by one thread at a time — threads wanting concurrency each
open their own via :meth:`Database.session`.

>>> from repro.ordb import Database
>>> db = Database()
>>> _ = db.execute("CREATE TABLE T(a NUMBER)")
>>> with db.session() as s1:
...     s1.begin()
...     _ = s1.execute("INSERT INTO T VALUES(1)")
...     s1.rollback()
...     s1.execute("SELECT COUNT(*) FROM T").scalar()
0
"""

from __future__ import annotations

import contextlib
import time
from typing import TYPE_CHECKING

from .errors import NoSuchSavepoint, TransactionError
from .results import Result
from .sql import ast
from .transactions import Transaction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Database


class Session:
    """One logical connection: private transaction, shared database."""

    def __init__(self, db: "Database", sid: int, name: str = ""):
        self.db = db
        #: integer id used by the lock manager and wait-for graph
        self.sid = sid
        self.name = name or f"session-{sid}"
        self.txn: Transaction | None = None
        self.closed = False
        self._atomic_seq = 0
        #: seconds one statement may run (lock waits included) before
        #: the engine aborts it with
        #: :class:`~repro.ordb.errors.StatementTimeout`; None = no
        #: budget.  The network server sets this per connection.
        self.statement_timeout: float | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else (
            "in transaction" if self.txn is not None else "idle")
        return f"<Session {self.name} ({state})>"

    # -- statement execution -----------------------------------------------------

    def execute(self, statement: str | ast.Statement) -> Result:
        """Execute one statement under this session's locks."""
        return self.db.execute(statement, session=self)

    def executescript(self, script: str) -> list[Result]:
        from .sql.lexer import split_statements

        return [self.execute(text) for text in split_statements(script)]

    # -- transaction control -----------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self.txn is not None

    def begin(self) -> None:
        """Open an explicit transaction (autocommit until then)."""
        if self.txn is not None:
            raise TransactionError(
                "a transaction is already active;"
                " COMMIT or ROLLBACK first")
        self.txn = Transaction()
        self.db._txn_started(self)

    def commit(self) -> None:
        """Make the open transaction's work permanent and release its
        locks (no-op when none is open, like Oracle's COMMIT).

        In durable mode the transaction's redo statements go to the
        WAL *before* anything is acknowledged; if the append fails
        (an injected media fault), the in-memory work is rolled back
        too, so memory never diverges from what recovery will
        rebuild.  The ``commit`` fault site fires first — a fired
        fault leaves the transaction open for the caller to roll
        back, modelling a crash just before the commit point.

        With ``Database(group_commit=True)`` the WAL append above
        coalesces with concurrent committers into one batched
        append + fsync (leader/follower group commit); the durability
        contract is unchanged — this call still returns only after
        the batch holding this transaction's redo is on disk.
        """
        db = self.db
        committed = self.txn is not None
        if committed:
            db.faults.hit("commit", session=self.name)
            if self.txn.statements:
                try:
                    db._wal_commit(self.txn.statements)
                except BaseException:
                    self.rollback()
                    raise
            # the commit point: one fresh commit timestamp makes the
            # whole write set visible to snapshot readers at once
            # (only after the WAL accepted the redo, so nothing is
            # ever visible that recovery would not rebuild)
            db._commit_transaction(self.txn)
        if db.obs.enabled and committed:
            db.obs.metrics.counter("txn.commits",
                                   unit="transactions").inc()
        self.txn = None
        db._txn_finished(self)
        db.locks.release_all(self.sid)
        if committed and db.commit_latency > 0.0:
            # the commit-acknowledgement round trip of the paper's
            # client-server setup, paid *after* locks are released so
            # concurrent sessions overlap their waits
            time.sleep(db.commit_latency)
        if committed:
            db._maybe_autocheckpoint()

    def rollback(self, to: str | None = None) -> None:
        """Undo the open transaction, or just back to savepoint *to*
        (which keeps the transaction — and its locks — alive)."""
        db = self.db
        if db.obs.enabled and self.txn is not None:
            db.obs.metrics.counter(
                "txn.rollbacks_to_savepoint" if to is not None
                else "txn.rollbacks",
                unit="rollbacks" if to is not None
                else "transactions").inc()
        if self.txn is None:
            if to is not None:
                raise NoSuchSavepoint(
                    f"savepoint '{to}' never established"
                    f" (no transaction is active)")
            db.locks.release_all(self.sid)
            return
        # journal replay mutates shared rows/indexes/catalog: it must
        # run under the engine latch like any statement body
        with db._latch:
            if to is None:
                self.txn.rollback()
                self.txn = None
            else:
                self.txn.rollback_to(to)
            db._data_version += 1
        if self.txn is None:
            db._txn_finished(self)
            db.locks.release_all(self.sid)

    def savepoint(self, name: str) -> None:
        """Establish a named savepoint (implicitly opening a
        transaction when none is active, as DML does in Oracle)."""
        if self.txn is None:
            self.txn = Transaction()
            self.db._txn_started(self)
        self.txn.savepoint(name)

    def set_transaction(self, read_only: bool | None = None,
                        isolation: str | None = None) -> None:
        """``SET TRANSACTION``: open a transaction with a pinned
        snapshot and/or access mode.

        Like Oracle, it must be the first statement of the
        transaction (it implicitly opens one when none is active).
        ``read_only=True`` pins the snapshot and rejects DML/DDL with
        ORA-01456; ``isolation="SERIALIZABLE"`` pins the snapshot for
        reads *and* arms the first-committer-wins write check
        (ORA-08177).
        """
        db = self.db
        if self.txn is not None and (self.txn.executed
                                     or self.txn.statements
                                     or len(self.txn.journal)
                                     or self.txn.write_set):
            raise TransactionError(
                "SET TRANSACTION must be the first statement of a"
                " transaction")
        if self.txn is None:
            self.txn = Transaction()
            db._txn_started(self)
        txn = self.txn
        if read_only is not None:
            txn.read_only = read_only
        if isolation is not None:
            txn.isolation = isolation
        pin = txn.read_only or txn.isolation == "SERIALIZABLE"
        if pin and txn.snapshot_ts is None and db.mvcc:
            with db._latch:  # a concurrent commit must not tear this
                txn.snapshot_ts = db._commit_ts
            db._pin_snapshot(self, txn.snapshot_ts)
        elif not pin and txn.snapshot_ts is not None:
            # READ WRITE / READ COMMITTED after a pinning clause:
            # back to statement-level snapshots
            txn.snapshot_ts = None
            db._unpin_snapshot(self)

    @property
    def isolation_level(self) -> str:
        """The effective isolation of the open transaction — "READ
        ONLY", "SERIALIZABLE" or "READ COMMITTED" (also the answer
        when no transaction is open: the default for the next one)."""
        if self.txn is not None:
            if self.txn.read_only:
                return "READ ONLY"
            return self.txn.isolation
        return "READ COMMITTED"

    def txn_status(self) -> dict:
        """Wire-friendly transaction state (the network server ships
        this to clients)."""
        txn = self.txn
        return {
            "active": txn is not None,
            "isolation": self.isolation_level,
            "read_only": bool(txn is not None and txn.read_only),
            "snapshot_ts": txn.snapshot_ts if txn is not None else None,
        }

    @contextlib.contextmanager
    def transaction(self):
        """``with session.transaction():`` — commit on success, roll
        back on any exception."""
        self.begin()
        try:
            yield self
        except BaseException:
            self.rollback()
            raise
        try:
            self.commit()
        except BaseException:
            # a failed commit (injected commit/WAL fault) must not
            # leave the transaction's work half-visible: durable
            # commits roll back internally, a commit-site fault
            # leaves the transaction open — undo it here
            if self.txn is not None:
                self.rollback()
            raise

    @contextlib.contextmanager
    def atomic(self):
        """An all-or-nothing scope that nests: a full transaction at
        the outermost level, a uniquely-named savepoint inside an
        already-open transaction."""
        if self.txn is None:
            with self.transaction():
                yield self
            return
        self._atomic_seq += 1
        name = f"ATOMIC${self._atomic_seq}"
        txn = self.txn
        txn.savepoint(name)
        try:
            yield self
        except BaseException:
            # the transaction object may have been swapped by an inner
            # rollback-everything; only unwind if ours is still open
            if self.txn is txn:
                with self.db._latch:
                    txn.rollback_to(name)
                    txn.release(name)
                    self.db._data_version += 1
            raise
        if self.txn is txn:
            txn.release(name)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Roll back any open work, drop all locks, retire the id."""
        if self.closed:
            return
        if self.txn is not None:
            self.rollback()
        self.db.locks.release_all(self.sid)
        self.closed = True
        self.db._session_closed(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
