"""Identifier rules of the engine: length limit, reserved words, case.

Section 5 of the paper calls out two naming hazards its conventions
must survive: the 30-character maximum length of Oracle identifiers
and collisions with SQL keywords (the example given is ``ORDER``).
The engine enforces both, so the naming module's mitigations are
actually exercised.
"""

from __future__ import annotations

from .errors import IdentifierTooLong, InvalidIdentifier, ReservedWord

#: Maximum identifier length, as in Oracle 8i/9i.
MAX_IDENTIFIER_LENGTH = 30

#: Reserved words that cannot name schema objects or columns.  This is
#: the subset of Oracle's reserved words relevant to generated schemas;
#: element names such as ORDER, GROUP or TABLE collide with these.
RESERVED_WORDS = frozenset({
    "ACCESS", "ADD", "ALL", "ALTER", "AND", "ANY", "AS", "ASC", "AUDIT",
    "BETWEEN", "BY", "CHAR", "CHECK", "CLUSTER", "COLUMN", "COMMENT",
    "COMPRESS", "CONNECT", "CREATE", "CURRENT", "DATE", "DECIMAL",
    "DEFAULT", "DELETE", "DESC", "DISTINCT", "DROP", "ELSE", "EXCLUSIVE",
    "EXISTS", "FILE", "FLOAT", "FOR", "FROM", "GRANT", "GROUP", "HAVING",
    "IDENTIFIED", "IMMEDIATE", "IN", "INCREMENT", "INDEX", "INITIAL",
    "INSERT", "INTEGER", "INTERSECT", "INTO", "IS", "LEVEL", "LIKE",
    "LOCK", "LONG", "MAXEXTENTS", "MINUS", "MLSLABEL", "MODE", "MODIFY",
    "NOAUDIT", "NOCOMPRESS", "NOT", "NOWAIT", "NULL", "NUMBER", "OF",
    "OFFLINE", "ON", "ONLINE", "OPTION", "OR", "ORDER", "PCTFREE",
    "PRIOR", "PRIVILEGES", "PUBLIC", "RAW", "RENAME", "RESOURCE",
    "REVOKE", "ROW", "ROWID", "ROWNUM", "ROWS", "SELECT", "SESSION",
    "SET", "SHARE", "SIZE", "SMALLINT", "START", "SUCCESSFUL", "SYNONYM",
    "SYSDATE", "TABLE", "THEN", "TO", "TRIGGER", "UID", "UNION",
    "UNIQUE", "UPDATE", "USER", "VALIDATE", "VALUES", "VARCHAR",
    "VARCHAR2", "VIEW", "WHENEVER", "WHERE", "WITH",
})


def is_reserved(name: str) -> bool:
    """True if *name* (any case) is a reserved word."""
    return name.upper() in RESERVED_WORDS


def normalize(name: str) -> str:
    """Canonical catalog key for an identifier (Oracle uppercases)."""
    return name.upper()


def check(name: str, what: str = "identifier") -> str:
    """Validate *name* and return its normalized form.

    Raises the same family of errors Oracle would: too long
    (ORA-00972), reserved (ORA-00904 family) or malformed.
    """
    if not name:
        raise InvalidIdentifier(f"empty {what}")
    if len(name) > MAX_IDENTIFIER_LENGTH:
        raise IdentifierTooLong(
            f"{what} '{name}' exceeds {MAX_IDENTIFIER_LENGTH} characters")
    first = name[0]
    if not (first.isalpha() or first == "_"):
        raise InvalidIdentifier(
            f"{what} '{name}' must start with a letter")
    for ch in name[1:]:
        if not (ch.isalnum() or ch in "_$#"):
            raise InvalidIdentifier(
                f"{what} '{name}' contains illegal character {ch!r}")
    if is_reserved(name):
        raise ReservedWord(f"{what} '{name}' is a reserved word")
    return normalize(name)
