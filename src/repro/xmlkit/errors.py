"""Exception hierarchy for the XML substrate.

All parse-time errors carry a source position (1-based line and column)
so callers can report actionable diagnostics, mirroring what the Oracle
XDK parser used by the original XML2Oracle tool reported.
"""

from __future__ import annotations


class XMLError(Exception):
    """Base class for every error raised by :mod:`repro.xmlkit`."""


class XMLSyntaxError(XMLError):
    """The document is not well-formed.

    Attributes
    ----------
    message:
        Human-readable description of the problem.
    line, column:
        1-based position of the offending character, when known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        self.message = message
        self.line = line
        self.column = column
        if line is not None:
            super().__init__(f"{message} (line {line}, column {column})")
        else:
            super().__init__(message)


class XMLValidityError(XMLError):
    """The document is well-formed but violates its DTD."""

    def __init__(self, message: str, element: str | None = None):
        self.message = message
        self.element = element
        if element is not None:
            super().__init__(f"{message} (element <{element}>)")
        else:
            super().__init__(message)


class EntityError(XMLSyntaxError):
    """An entity reference could not be resolved or expands illegally."""


class SerializationError(XMLError):
    """A DOM tree contains content that cannot be serialized."""
