"""Serialization of DOM trees back to XML text.

The serializer is the other half of the round-trip problem discussed in
Sections 5–6.1 of the paper: what comes out of the database has to be
turned into a document again, optionally re-substituting the entity
references that the storage pipeline expanded.
"""

from __future__ import annotations

from .dom import (
    CDATASection,
    Comment,
    Document,
    DocumentType,
    Element,
    EntityReference,
    Node,
    ProcessingInstruction,
    Text,
)
from .entities import escape_attribute, escape_text, resubstitute
from .errors import SerializationError


class Serializer:
    """Configurable DOM-to-text writer.

    Parameters
    ----------
    indent:
        When a non-empty string, element-only content is pretty-printed
        with that unit of indentation.  Mixed content is never reflowed.
    entity_definitions:
        Optional mapping ``name -> replacement text``; literal
        occurrences of replacement texts in character data are rewritten
        back to ``&name;`` (Section 6.1 recovery).
    """

    def __init__(self, indent: str = "",
                 entity_definitions: dict[str, str] | None = None):
        self.indent = indent
        self.entity_definitions = entity_definitions or {}

    # -- public API -----------------------------------------------------------

    def serialize(self, node: Node) -> str:
        """Serialize *node* (a Document or any subtree) to a string."""
        parts: list[str] = []
        if isinstance(node, Document):
            self._write_document(node, parts)
        else:
            self._write_node(node, parts, level=0)
        return "".join(parts)

    # -- document level ----------------------------------------------------------

    def _write_document(self, document: Document, parts: list[str]) -> None:
        if document.xml_version is not None:
            parts.append(f'<?xml version="{document.xml_version}"')
            if document.encoding is not None:
                parts.append(f' encoding="{document.encoding}"')
            if document.standalone is not None:
                value = "yes" if document.standalone else "no"
                parts.append(f' standalone="{value}"')
            parts.append("?>\n")
        for child in document.children:
            self._write_node(child, parts, level=0)
            if not isinstance(child, Text):
                last = parts[-1] if parts else ""
                if self.indent and not last.endswith("\n"):
                    parts.append("\n")

    def _write_doctype(self, doctype: DocumentType, parts: list[str]) -> None:
        parts.append(f"<!DOCTYPE {doctype.name}")
        if doctype.public_id is not None:
            parts.append(
                f' PUBLIC "{doctype.public_id}" "{doctype.system_id or ""}"')
        elif doctype.system_id is not None:
            parts.append(f' SYSTEM "{doctype.system_id}"')
        if doctype.internal_subset is not None:
            parts.append(f" [{doctype.internal_subset}]")
        parts.append(">")

    # -- node dispatch --------------------------------------------------------------

    def _write_node(self, node: Node, parts: list[str], level: int) -> None:
        if isinstance(node, Element):
            self._write_element(node, parts, level)
        elif isinstance(node, Text):
            parts.append(self._text(node.data))
        elif isinstance(node, CDATASection):
            if "]]>" in node.data:
                raise SerializationError("CDATA section contains ']]>'")
            parts.append(f"<![CDATA[{node.data}]]>")
        elif isinstance(node, Comment):
            if "--" in node.data:
                raise SerializationError("comment contains '--'")
            parts.append(f"<!--{node.data}-->")
        elif isinstance(node, ProcessingInstruction):
            if node.data:
                parts.append(f"<?{node.target} {node.data}?>")
            else:
                parts.append(f"<?{node.target}?>")
        elif isinstance(node, EntityReference):
            parts.append(f"&{node.name};")
        elif isinstance(node, DocumentType):
            self._write_doctype(node, parts)
        else:  # pragma: no cover - defensive
            raise SerializationError(
                f"cannot serialize node type {node.node_type!r}")

    def _write_element(self, element: Element, parts: list[str],
                       level: int) -> None:
        parts.append(f"<{element.tag}")
        for attr in element.attributes.values():
            parts.append(f' {attr.name}="{escape_attribute(attr.value)}"')
        if not element.children:
            parts.append("/>")
            return
        parts.append(">")
        pretty = bool(self.indent) and self._is_element_only(element)
        inner = self.indent * (level + 1)
        for child in element.children:
            if pretty and isinstance(child, Text) and child.is_whitespace():
                continue
            if pretty:
                parts.append(f"\n{inner}")
            self._write_node(child, parts, level + 1)
        if pretty:
            parts.append(f"\n{self.indent * level}")
        parts.append(f"</{element.tag}>")

    # -- helpers -------------------------------------------------------------------------

    def _text(self, data: str) -> str:
        escaped = escape_text(data)
        if self.entity_definitions:
            escaped = resubstitute(escaped, {
                name: escape_text(value)
                for name, value in self.entity_definitions.items()
            })
        return escaped

    @staticmethod
    def _is_element_only(element: Element) -> bool:
        return all(
            isinstance(c, Element)
            or (isinstance(c, Text) and c.is_whitespace())
            for c in element.children
        )


def serialize(node: Node, indent: str = "",
              entity_definitions: dict[str, str] | None = None) -> str:
    """Serialize *node* with a throwaway :class:`Serializer`."""
    return Serializer(indent, entity_definitions).serialize(node)
