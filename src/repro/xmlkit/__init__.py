"""XML substrate: parser, DOM, entities and serializer.

This package replaces the Oracle XDK parser used by the paper's
XML2Oracle tool (Fig. 1).  The public surface is:

>>> from repro.xmlkit import parse, serialize
>>> doc = parse("<a><b>hi</b></a>")
>>> doc.root_element.find("b").text()
'hi'
>>> serialize(doc.root_element)
'<a><b>hi</b></a>'
"""

from .dom import (
    Attribute,
    CDATASection,
    Comment,
    Document,
    DocumentType,
    Element,
    EntityReference,
    Node,
    ProcessingInstruction,
    Text,
    build_element,
)
from .entities import EntityDefinition, EntityTable, PREDEFINED_ENTITIES
from .errors import (
    EntityError,
    SerializationError,
    XMLError,
    XMLSyntaxError,
    XMLValidityError,
)
from .parser import XMLParser, parse
from .serializer import Serializer, serialize

__all__ = [
    "Attribute",
    "CDATASection",
    "Comment",
    "Document",
    "DocumentType",
    "Element",
    "EntityDefinition",
    "EntityError",
    "EntityReference",
    "EntityTable",
    "Node",
    "PREDEFINED_ENTITIES",
    "ProcessingInstruction",
    "SerializationError",
    "Serializer",
    "Text",
    "XMLError",
    "XMLParser",
    "XMLSyntaxError",
    "XMLValidityError",
    "build_element",
    "parse",
    "serialize",
]
