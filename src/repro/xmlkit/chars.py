"""Character classification rules from the XML 1.0 specification.

Only the subsets that matter for parsing real-world documents are
implemented exactly; the exotic Unicode ranges of the spec's productions
are approximated with Python's ``str`` predicates where the approximation
is strictly wider than needed for the corpora used in this project.
"""

from __future__ import annotations

#: Characters legal anywhere in an XML 1.0 document (production [2] Char).
_EXTRA_LEGAL = {"\t", "\n", "\r"}

#: ASCII letters, used by several name rules.
_ASCII_LETTERS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
)

#: Characters that may start an XML Name (production [4] NameStartChar).
_NAME_START_EXTRA = frozenset(":_")

#: Additional characters allowed after the first position ([4a] NameChar).
_NAME_EXTRA = frozenset(":_-.·")

#: XML whitespace (production [3] S).
WHITESPACE = frozenset(" \t\r\n")

#: Characters allowed in a PUBLIC identifier literal ([13] PubidChar).
PUBID_CHARS = frozenset(
    " \r\n"
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    "-'()+,./:=?;!*#@$_%"
)


def is_xml_char(ch: str) -> bool:
    """Return True if *ch* is a legal XML 1.0 document character."""
    code = ord(ch)
    if code >= 0x20:
        return code <= 0xD7FF or 0xE000 <= code <= 0xFFFD or code >= 0x10000
    return ch in _EXTRA_LEGAL


def is_whitespace(ch: str) -> bool:
    """Return True if *ch* is XML whitespace (space, tab, CR, LF)."""
    return ch in WHITESPACE


def is_name_start_char(ch: str) -> bool:
    """Return True if *ch* may begin an XML Name."""
    if ch in _ASCII_LETTERS or ch in _NAME_START_EXTRA:
        return True
    code = ord(ch)
    if code < 0x80:
        return False
    # Wider-than-spec approximation for non-ASCII ranges: accept any
    # character Python considers alphabetic, plus the spec's explicit
    # ideographic/extender ranges.
    return ch.isalpha() or 0x2070 <= code <= 0x218F or 0x3001 <= code <= 0xD7FF


def is_name_char(ch: str) -> bool:
    """Return True if *ch* may appear in an XML Name after position 0."""
    if is_name_start_char(ch) or ch in _NAME_EXTRA:
        return True
    return ch.isdigit() or 0x0300 <= ord(ch) <= 0x036F


def is_name(text: str) -> bool:
    """Return True if *text* is a valid XML Name."""
    if not text:
        return False
    if not is_name_start_char(text[0]):
        return False
    return all(is_name_char(ch) for ch in text[1:])


def is_nmtoken(text: str) -> bool:
    """Return True if *text* is a valid XML Nmtoken (NameChar+)."""
    return bool(text) and all(is_name_char(ch) for ch in text)


def is_pubid_literal(text: str) -> bool:
    """Return True if *text* may appear inside a PUBLIC id literal."""
    return all(ch in PUBID_CHARS for ch in text)
