"""A small DOM: the in-memory tree produced by the XML parser.

The original XML2Oracle tool worked on two DOM trees (Fig. 1 of the
paper): one for the XML document, one for the DTD.  This module provides
the document side.  Unlike ``xml.dom.minidom`` it keeps *everything* a
round-trip needs: comments, processing instructions, CDATA sections,
unexpanded entity references, the XML declaration and the document type
declaration, because Section 6.1 of the paper is precisely about what is
lost when such nodes are not preserved.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Node:
    """Base class for all tree nodes."""

    #: set by subclasses; mirrors the DOM nodeType vocabulary.
    node_type: str = "node"

    def __init__(self) -> None:
        self.parent: Node | None = None

    # -- tree navigation ---------------------------------------------------

    @property
    def children(self) -> list[Node]:
        """Child nodes; leaf node classes return an empty list."""
        return []

    def iter(self) -> Iterator[Node]:
        """Yield this node and every descendant in document order."""
        yield self
        for child in self.children:
            yield from child.iter()

    def text_content(self) -> str:
        """Concatenated character data of this node and its descendants."""
        parts: list[str] = []
        for node in self.iter():
            if isinstance(node, (Text, CDATASection)):
                parts.append(node.data)
            elif isinstance(node, EntityReference) and node.expansion is not None:
                parts.append(node.expansion)
        return "".join(parts)

    def root(self) -> Node:
        """Return the topmost ancestor (the node itself if detached)."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node


class _ParentNode(Node):
    """Shared implementation for nodes that own children."""

    def __init__(self) -> None:
        super().__init__()
        self._children: list[Node] = []

    @property
    def children(self) -> list[Node]:
        return self._children

    def append(self, child: Node) -> Node:
        """Attach *child* as the last child and return it."""
        child.parent = self
        self._children.append(child)
        return child

    def remove(self, child: Node) -> None:
        """Detach *child*; raises ValueError if it is not a child."""
        self._children.remove(child)
        child.parent = None

    def replace(self, old: Node, new: Node) -> None:
        """Replace child *old* with *new* in place."""
        index = self._children.index(old)
        old.parent = None
        new.parent = self
        self._children[index] = new


class Attribute:
    """A single attribute of an element.

    ``specified`` distinguishes attributes written in the document from
    attributes injected from DTD default declarations — the paper's
    meta-table needs this distinction to avoid round-trip inflation.
    """

    def __init__(self, name: str, value: str, specified: bool = True):
        self.name = name
        self.value = value
        self.specified = specified

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Attribute({self.name!r}, {self.value!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Attribute):
            return NotImplemented
        return (self.name, self.value) == (other.name, other.value)

    def __hash__(self) -> int:
        return hash((self.name, self.value))


class Element(_ParentNode):
    """An element node with ordered attributes and children."""

    node_type = "element"

    def __init__(self, tag: str):
        super().__init__()
        self.tag = tag
        self.attributes: dict[str, Attribute] = {}

    # -- attribute access --------------------------------------------------

    def get(self, name: str, default: str | None = None) -> str | None:
        """Return the value of attribute *name*, or *default*."""
        attr = self.attributes.get(name)
        return attr.value if attr is not None else default

    def set(self, name: str, value: str, specified: bool = True) -> None:
        """Create or overwrite attribute *name*."""
        self.attributes[name] = Attribute(name, value, specified)

    def has_attribute(self, name: str) -> bool:
        return name in self.attributes

    # -- element-centric navigation -----------------------------------------

    @property
    def child_elements(self) -> list["Element"]:
        """Direct element children, in document order."""
        return [c for c in self._children if isinstance(c, Element)]

    def find(self, tag: str) -> "Element | None":
        """First direct child element with the given tag, or None."""
        for child in self.child_elements:
            if child.tag == tag:
                return child
        return None

    def find_all(self, tag: str) -> list["Element"]:
        """All direct child elements with the given tag."""
        return [c for c in self.child_elements if c.tag == tag]

    def iter_elements(self, tag: str | None = None) -> Iterator["Element"]:
        """Yield this element and descendant elements, optionally filtered."""
        for node in self.iter():
            if isinstance(node, Element) and (tag is None or node.tag == tag):
                yield node

    def text(self) -> str:
        """Character data directly inside this element (not descendants)."""
        parts = []
        for child in self._children:
            if isinstance(child, (Text, CDATASection)):
                parts.append(child.data)
            elif isinstance(child, EntityReference) and child.expansion is not None:
                parts.append(child.expansion)
        return "".join(parts)

    def has_element_children(self) -> bool:
        return any(isinstance(c, Element) for c in self._children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Element {self.tag} attrs={list(self.attributes)}>"


class Text(Node):
    """Character data."""

    node_type = "text"

    def __init__(self, data: str):
        super().__init__()
        self.data = data

    def is_whitespace(self) -> bool:
        """True if the node contains only XML whitespace."""
        return not self.data.strip(" \t\r\n")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Text({self.data!r})"


class CDATASection(Node):
    """A ``<![CDATA[...]]>`` section; data is stored unescaped."""

    node_type = "cdata"

    def __init__(self, data: str):
        super().__init__()
        self.data = data


class Comment(Node):
    """A ``<!-- ... -->`` comment."""

    node_type = "comment"

    def __init__(self, data: str):
        super().__init__()
        self.data = data


class ProcessingInstruction(Node):
    """A ``<?target data?>`` processing instruction."""

    node_type = "pi"

    def __init__(self, target: str, data: str):
        super().__init__()
        self.target = target
        self.data = data


class EntityReference(Node):
    """An unexpanded general entity reference ``&name;``.

    The parser normally expands entities in place (the behaviour the
    paper describes for the XDK parser); when expansion is disabled the
    reference node is kept and ``expansion`` carries the replacement
    text so queries can still see through it.
    """

    node_type = "entity_ref"

    def __init__(self, name: str, expansion: str | None = None):
        super().__init__()
        self.name = name
        self.expansion = expansion


class DocumentType(Node):
    """The ``<!DOCTYPE ...>`` declaration attached to a document.

    ``internal_subset`` is the raw text between ``[`` and ``]``; the
    parsed form lives in :class:`repro.dtd.model.DTD` (``dtd``).
    """

    node_type = "doctype"

    def __init__(self, name: str, public_id: str | None = None,
                 system_id: str | None = None,
                 internal_subset: str | None = None):
        super().__init__()
        self.name = name
        self.public_id = public_id
        self.system_id = system_id
        self.internal_subset = internal_subset
        self.dtd = None  # type: object | None


class Document(_ParentNode):
    """The document node: prolog information plus the element tree."""

    node_type = "document"

    def __init__(self) -> None:
        super().__init__()
        self.xml_version: str | None = None
        self.encoding: str | None = None
        self.standalone: bool | None = None
        self.doctype: DocumentType | None = None

    @property
    def root_element(self) -> Element:
        """The single top-level element; raises if the tree is empty."""
        for child in self._children:
            if isinstance(child, Element):
                return child
        raise ValueError("document has no root element")

    def misc_nodes(self) -> list[Node]:
        """Comments/PIs that appear outside the root element."""
        return [c for c in self._children if not isinstance(c, Element)]

    def count_nodes(self, node_type: str | None = None) -> int:
        """Total number of nodes (of one type) in the document."""
        return sum(
            1 for node in self.iter()
            if node_type is None or node.node_type == node_type
        )


def build_element(tag: str, attributes: dict[str, str] | None = None,
                  children: Iterable[Node | str] = ()) -> Element:
    """Convenience constructor used heavily by tests and workloads.

    Strings in *children* become :class:`Text` nodes.
    """
    element = Element(tag)
    for name, value in (attributes or {}).items():
        element.set(name, value)
    for child in children:
        if isinstance(child, str):
            element.append(Text(child))
        else:
            element.append(child)
    return element
