"""XML 1.0 parser producing the :mod:`repro.xmlkit.dom` tree.

This is the reproduction of the validating "XML V2 parser" box of
Fig. 1: it checks well-formedness while building the tree; validity
checking against the DTD is performed afterwards by
:class:`repro.dtd.validator.Validator` on the finished tree.

Two behaviours relevant to the paper are configurable:

``expand_entities`` (default True)
    Matches the paper's parser, which expands general entities at their
    occurrences (Section 6.1).  With False, ``EntityReference`` nodes
    are preserved in the tree (each still carries its expansion so
    downstream code can read through it).

``keep_ignorable_whitespace`` (default True)
    Whitespace-only text between elements is kept, so serialization can
    reproduce the original layout.
"""

from __future__ import annotations

from . import chars
from .dom import (
    CDATASection,
    Comment,
    Document,
    DocumentType,
    Element,
    EntityReference,
    ProcessingInstruction,
    Text,
)
from .entities import (
    EntityTable,
    PREDEFINED_ENTITIES,
    expand_char_reference,
)
from .errors import EntityError, XMLSyntaxError
from .lexer import Scanner

#: Attribute value characters replaced by space during normalization.
_ATTR_WHITESPACE = {"\t", "\n", "\r"}

#: Hard cap on entity-driven re-parsing depth.
_MAX_ENTITY_DEPTH = 32


class XMLParser:
    """Recursive-descent XML 1.0 parser.

    A single parser instance is reusable; each :meth:`parse` call is
    independent.
    """

    def __init__(self, expand_entities: bool = True,
                 keep_ignorable_whitespace: bool = True,
                 dtd_loader=None, tracer=None):
        self.expand_entities = expand_entities
        self.keep_ignorable_whitespace = keep_ignorable_whitespace
        #: optional callable(system_id) -> DTD text, consulted for
        #: ``<!DOCTYPE name SYSTEM "...">`` declarations.  Offline by
        #: default (None): external subsets are recorded, not fetched.
        self.dtd_loader = dtd_loader
        #: optional :class:`repro.obs.Tracer`; when set, each parse
        #: opens an ``xml.parse`` span under the current span
        self.tracer = tracer

    # -- public API -----------------------------------------------------------

    def parse(self, text: str) -> Document:
        """Parse a complete document; raises XMLSyntaxError if ill-formed."""
        if self.tracer is None:
            return self._parse_document(text)
        with self.tracer.span("xml.parse", chars=len(text)) as span:
            document = self._parse_document(text)
            root = document.root_element
            if root is not None:
                span.set(elements=sum(
                    1 for _ in root.iter_elements()))
            return document

    def _parse_document(self, text: str) -> Document:
        if text.startswith("﻿"):
            text = text[1:]
        self._check_characters(text)
        scanner = Scanner(text)
        document = Document()
        self._entities = EntityTable()

        self._parse_prolog(scanner, document)
        root = self._parse_element(scanner, depth=0)
        document.append(root)
        self._parse_misc(scanner, document)
        if not scanner.at_end:
            scanner.error("content after document element")
        return document

    def parse_fragment(self, text: str,
                       entities: EntityTable | None = None) -> list:
        """Parse mixed content (no prolog) into a list of nodes.

        Used for expanding entity replacement text that contains markup
        and by tests that build partial trees.
        """
        self._entities = entities or EntityTable()
        scanner = Scanner(text)
        holder = Element("#fragment")
        self._parse_content_into(scanner, holder, end_tag=None, depth=0)
        nodes = list(holder.children)
        for node in nodes:
            node.parent = None
        return nodes

    # -- prolog ----------------------------------------------------------------

    def _parse_prolog(self, scanner: Scanner, document: Document) -> None:
        if scanner.lookahead("<?xml") and scanner.peek(5) in " \t\r\n":
            self._parse_xml_declaration(scanner, document)
        while True:
            scanner.skip_whitespace()
            if scanner.lookahead("<!--"):
                document.append(self._parse_comment(scanner))
            elif scanner.lookahead("<?"):
                document.append(self._parse_pi(scanner))
            elif scanner.lookahead("<!DOCTYPE"):
                if document.doctype is not None:
                    scanner.error("multiple DOCTYPE declarations")
                document.doctype = self._parse_doctype(scanner)
                document.append(document.doctype)
            else:
                break
        if scanner.at_end:
            scanner.error("document has no root element")

    def _parse_xml_declaration(self, scanner: Scanner,
                               document: Document) -> None:
        scanner.expect("<?xml")
        scanner.require_whitespace("after '<?xml'")
        scanner.expect("version", context="XML declaration")
        document.xml_version = self._parse_eq_literal(scanner)
        if document.xml_version not in ("1.0", "1.1"):
            scanner.error(
                f"unsupported XML version {document.xml_version!r}")
        scanner.skip_whitespace()
        if scanner.match("encoding"):
            document.encoding = self._parse_eq_literal(scanner)
            scanner.skip_whitespace()
        if scanner.match("standalone"):
            value = self._parse_eq_literal(scanner)
            if value not in ("yes", "no"):
                scanner.error("standalone must be 'yes' or 'no'")
            document.standalone = value == "yes"
            scanner.skip_whitespace()
        scanner.expect("?>", context="XML declaration")

    def _parse_eq_literal(self, scanner: Scanner) -> str:
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        return scanner.read_quoted()

    def _parse_doctype(self, scanner: Scanner) -> DocumentType:
        scanner.expect("<!DOCTYPE")
        scanner.require_whitespace("after '<!DOCTYPE'")
        name = scanner.read_name("document type name")
        public_id = system_id = None
        scanner.skip_whitespace()
        if scanner.match("SYSTEM"):
            scanner.require_whitespace("after SYSTEM")
            system_id = scanner.read_quoted("system identifier")
        elif scanner.match("PUBLIC"):
            scanner.require_whitespace("after PUBLIC")
            public_id = scanner.read_quoted("public identifier")
            if not chars.is_pubid_literal(public_id):
                scanner.error("illegal character in public identifier")
            scanner.require_whitespace("after public identifier")
            system_id = scanner.read_quoted("system identifier")
        scanner.skip_whitespace()
        internal_subset = None
        if scanner.match("["):
            internal_subset = self._read_internal_subset(scanner)
        scanner.skip_whitespace()
        scanner.expect(">", context="DOCTYPE declaration")

        doctype = DocumentType(name, public_id, system_id, internal_subset)
        # Imported lazily: repro.dtd depends on xmlkit but not on
        # this module, so the import is cycle-free at call time.
        from repro.dtd.parser import DTDParser

        subset_text = internal_subset
        if (subset_text is None and system_id is not None
                and self.dtd_loader is not None):
            subset_text = self.dtd_loader(system_id)
        if subset_text is not None:
            doctype.dtd = DTDParser().parse(subset_text)
            self._entities = doctype.dtd.entities
        return doctype

    def _read_internal_subset(self, scanner: Scanner) -> str:
        """Capture the raw internal subset, honouring nested literals."""
        start = scanner.pos
        while not scanner.at_end:
            ch = scanner.peek()
            if ch == "]":
                body = scanner.text[start:scanner.pos]
                scanner.advance()
                return body
            if ch in ("'", '"'):
                scanner.read_quoted("literal in internal subset")
            elif scanner.lookahead("<!--"):
                self._parse_comment(scanner)
            else:
                scanner.advance()
        scanner.error("unterminated internal DTD subset")
        raise AssertionError("unreachable")

    # -- elements ----------------------------------------------------------------

    def _parse_element(self, scanner: Scanner, depth: int) -> Element:
        scanner.expect("<")
        tag = scanner.read_name("element name")
        element = Element(tag)
        self._parse_attributes(scanner, element)
        if scanner.match("/>"):
            return element
        scanner.expect(">", context=f"start tag <{tag}>")
        self._parse_content_into(scanner, element, end_tag=tag, depth=depth)
        return element

    def _parse_attributes(self, scanner: Scanner, element: Element) -> None:
        while True:
            had_space = scanner.skip_whitespace()
            ch = scanner.peek()
            if ch in (">", "/") or scanner.at_end:
                return
            if not had_space:
                scanner.error(
                    f"whitespace required before attribute in <{element.tag}>")
            name = scanner.read_name("attribute name")
            scanner.skip_whitespace()
            scanner.expect("=", context=f"attribute {name!r}")
            scanner.skip_whitespace()
            raw = scanner.read_quoted(f"value of attribute {name!r}")
            if "<" in raw:
                scanner.error(f"'<' in value of attribute {name!r}")
            if name in element.attributes:
                scanner.error(
                    f"duplicate attribute {name!r} in <{element.tag}>")
            element.set(name, self._normalize_attribute(raw, scanner))

    def _normalize_attribute(self, raw: str, scanner: Scanner) -> str:
        """Apply XML 1.0 attribute-value normalization (CDATA rules)."""
        out: list[str] = []
        i = 0
        while i < len(raw):
            ch = raw[i]
            if ch in _ATTR_WHITESPACE:
                out.append(" ")
                i += 1
            elif ch == "&":
                end = raw.find(";", i + 1)
                if end == -1:
                    scanner.error("unterminated reference in attribute value")
                body = raw[i + 1:end]
                try:
                    if body.startswith("#"):
                        out.append(expand_char_reference(body))
                    else:
                        out.append(self._entities.expand_general(body))
                except EntityError as exc:
                    scanner.error(str(exc))
                i = end + 1
            else:
                out.append(ch)
                i += 1
        return "".join(out)

    # -- content -------------------------------------------------------------------

    def _parse_content_into(self, scanner: Scanner, parent: Element,
                            end_tag: str | None, depth: int) -> None:
        text_buffer: list[str] = []

        def flush_text() -> None:
            if not text_buffer:
                return
            data = "".join(text_buffer)
            text_buffer.clear()
            if data.strip(" \t\r\n") or self.keep_ignorable_whitespace:
                parent.append(Text(data))

        while True:
            if scanner.at_end:
                if end_tag is None:
                    flush_text()
                    return
                scanner.error(f"unexpected end of input inside <{end_tag}>")
            ch = scanner.peek()
            if ch == "<":
                if scanner.lookahead("</"):
                    flush_text()
                    if end_tag is None:
                        scanner.error("unexpected end tag in fragment")
                    scanner.advance(2)
                    closing = scanner.read_name("end tag name")
                    if closing != end_tag:
                        scanner.error(
                            f"end tag </{closing}> does not match <{end_tag}>")
                    scanner.skip_whitespace()
                    scanner.expect(">", context=f"end tag </{closing}>")
                    return
                flush_text()
                if scanner.lookahead("<!--"):
                    parent.append(self._parse_comment(scanner))
                elif scanner.lookahead("<![CDATA["):
                    parent.append(self._parse_cdata(scanner))
                elif scanner.lookahead("<!"):
                    scanner.error("declaration not allowed in content")
                elif scanner.lookahead("<?"):
                    parent.append(self._parse_pi(scanner))
                else:
                    parent.append(self._parse_element(scanner, depth + 1))
            elif ch == "&":
                self._parse_reference(scanner, parent, text_buffer, depth)
            else:
                if ch == "]" and scanner.lookahead("]]>"):
                    scanner.error("']]>' not allowed in character data")
                text_buffer.append(ch)
                scanner.advance()

    def _parse_reference(self, scanner: Scanner, parent: Element,
                         text_buffer: list[str], depth: int) -> None:
        scanner.expect("&")
        if scanner.match("#"):
            body = "#" + scanner.read_until(";", "character reference")
            try:
                text_buffer.append(expand_char_reference(body))
            except EntityError as exc:
                scanner.error(str(exc))
            return
        name = scanner.read_name("entity name")
        scanner.expect(";", context=f"entity reference &{name}")
        if name in PREDEFINED_ENTITIES:
            text_buffer.append(PREDEFINED_ENTITIES[name])
            return
        try:
            expansion = self._entities.expand_general(name)
        except EntityError as exc:
            if self.expand_entities:
                scanner.error(str(exc))
            if text_buffer:
                parent.append(Text("".join(text_buffer)))
                text_buffer.clear()
            parent.append(EntityReference(name, None))
            return
        if not self.expand_entities:
            # Keep the reference node but flush pending text first so
            # document order is preserved.
            if text_buffer:
                parent.append(Text("".join(text_buffer)))
                text_buffer.clear()
            parent.append(EntityReference(name, expansion))
            return
        if "<" in expansion:
            if depth >= _MAX_ENTITY_DEPTH:
                scanner.error(f"entity &{name}; nests too deeply")
            if text_buffer:
                parent.append(Text("".join(text_buffer)))
                text_buffer.clear()
            for node in self.parse_fragment(expansion, self._entities):
                parent.append(node)
        else:
            text_buffer.append(expansion)

    # -- misc constructs -------------------------------------------------------------

    def _parse_comment(self, scanner: Scanner) -> Comment:
        scanner.expect("<!--")
        body = scanner.read_until("-->", "comment")
        if "--" in body:
            scanner.error("'--' not allowed inside comment")
        return Comment(body)

    def _parse_cdata(self, scanner: Scanner) -> CDATASection:
        scanner.expect("<![CDATA[")
        return CDATASection(scanner.read_until("]]>", "CDATA section"))

    def _parse_pi(self, scanner: Scanner) -> ProcessingInstruction:
        scanner.expect("<?")
        target = scanner.read_name("processing instruction target")
        if target.lower() == "xml":
            scanner.error("'xml' is a reserved processing instruction target")
        if scanner.match("?>"):
            return ProcessingInstruction(target, "")
        scanner.require_whitespace("after processing instruction target")
        return ProcessingInstruction(
            target, scanner.read_until("?>", "processing instruction"))

    def _parse_misc(self, scanner: Scanner, document: Document) -> None:
        while True:
            scanner.skip_whitespace()
            if scanner.lookahead("<!--"):
                document.append(self._parse_comment(scanner))
            elif scanner.lookahead("<?"):
                document.append(self._parse_pi(scanner))
            else:
                return

    # -- helpers ------------------------------------------------------------------------

    @staticmethod
    def _check_characters(text: str) -> None:
        for index, ch in enumerate(text):
            if not chars.is_xml_char(ch):
                line = text.count("\n", 0, index) + 1
                column = index - text.rfind("\n", 0, index)
                raise XMLSyntaxError(
                    f"illegal character U+{ord(ch):04X}", line, column)


def parse(text: str, expand_entities: bool = True,
          keep_ignorable_whitespace: bool = True,
          tracer=None) -> Document:
    """Parse *text* into a :class:`~repro.xmlkit.dom.Document`."""
    parser = XMLParser(expand_entities=expand_entities,
                       keep_ignorable_whitespace=keep_ignorable_whitespace,
                       tracer=tracer)
    return parser.parse(text)
