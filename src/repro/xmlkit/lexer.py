"""Low-level character scanner shared by the XML and DTD parsers.

The scanner owns position tracking (1-based line/column) and the
primitive operations every hand-written recursive-descent parser needs:
peeking, matching literals, reading XML names and quoted literals, and
raising positioned syntax errors.
"""

from __future__ import annotations

from . import chars
from .errors import XMLSyntaxError


class Scanner:
    """Cursor over a text buffer with line/column tracking."""

    def __init__(self, text: str, start_line: int = 1, start_column: int = 1):
        self.text = text
        self.pos = 0
        self.line = start_line
        self.column = start_column

    # -- inspection ----------------------------------------------------------

    @property
    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self, offset: int = 0) -> str:
        """Character at cursor + offset, or '' past the end."""
        index = self.pos + offset
        if index < len(self.text):
            return self.text[index]
        return ""

    def lookahead(self, literal: str) -> bool:
        """True if the buffer continues with *literal*."""
        return self.text.startswith(literal, self.pos)

    # -- movement ------------------------------------------------------------

    def advance(self, count: int = 1) -> str:
        """Consume *count* characters and return them."""
        end = min(self.pos + count, len(self.text))
        consumed = self.text[self.pos:end]
        for ch in consumed:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos = end
        return consumed

    def match(self, literal: str) -> bool:
        """Consume *literal* if present; return whether it was."""
        if self.lookahead(literal):
            self.advance(len(literal))
            return True
        return False

    def expect(self, literal: str, context: str | None = None) -> None:
        """Consume *literal* or raise a positioned syntax error."""
        if not self.match(literal):
            where = f" in {context}" if context else ""
            found = self.peek() or "<end of input>"
            self.error(f"expected {literal!r}{where}, found {found!r}")

    # -- composite reads ------------------------------------------------------

    def skip_whitespace(self) -> bool:
        """Skip XML whitespace; return True if any was consumed."""
        start = self.pos
        while not self.at_end and chars.is_whitespace(self.peek()):
            self.advance()
        return self.pos != start

    def require_whitespace(self, context: str) -> None:
        """Raise unless at least one whitespace character is consumed."""
        if not self.skip_whitespace():
            self.error(f"whitespace required {context}")

    def read_name(self, context: str = "name") -> str:
        """Read an XML Name or raise."""
        if self.at_end or not chars.is_name_start_char(self.peek()):
            self.error(f"expected {context}")
        start = self.pos
        self.advance()
        while not self.at_end and chars.is_name_char(self.peek()):
            self.advance()
        return self.text[start:self.pos]

    def read_nmtoken(self, context: str = "name token") -> str:
        """Read an XML Nmtoken or raise."""
        start = self.pos
        while not self.at_end and chars.is_name_char(self.peek()):
            self.advance()
        if self.pos == start:
            self.error(f"expected {context}")
        return self.text[start:self.pos]

    def read_quoted(self, context: str = "literal") -> str:
        """Read a single- or double-quoted literal; returns the raw body."""
        quote = self.peek()
        if quote not in ("'", '"'):
            self.error(f"expected quoted {context}")
        self.advance()
        start = self.pos
        end = self.text.find(quote, start)
        if end == -1:
            self.error(f"unterminated {context}")
        body = self.text[start:end]
        self.advance(len(body) + 1)
        return body

    def read_until(self, terminator: str, context: str) -> str:
        """Consume up to (and including) *terminator*; return the body."""
        end = self.text.find(terminator, self.pos)
        if end == -1:
            self.error(f"unterminated {context}")
        body = self.text[self.pos:end]
        self.advance(len(body) + len(terminator))
        return body

    # -- diagnostics -----------------------------------------------------------

    def error(self, message: str) -> None:
        """Raise an :class:`XMLSyntaxError` at the current position."""
        raise XMLSyntaxError(message, self.line, self.column)
