"""Entity definitions and expansion.

Section 6.1 of the paper discusses the round-trip consequences of
expanding entity references before storage: XML2Oracle expands entities
at their occurrences, losing the original definitions unless the
meta-database records them.  This module provides both halves: a table
of entity definitions (fed by the DTD parser) and expansion with
recursion protection, plus the reverse *re-substitution* used when a
document is reconstructed from the database.
"""

from __future__ import annotations

from .errors import EntityError

#: The five predefined entities of XML 1.0 (production [68] note).
PREDEFINED_ENTITIES: dict[str, str] = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "quot": '"',
    "apos": "'",
}

#: Maximum cumulative expansion size; guards against billion-laughs input.
MAX_EXPANSION_SIZE = 8 * 1024 * 1024


class EntityDefinition:
    """One ``<!ENTITY ...>`` declaration."""

    def __init__(self, name: str, replacement: str | None,
                 is_parameter: bool = False,
                 system_id: str | None = None,
                 public_id: str | None = None,
                 notation: str | None = None):
        self.name = name
        self.replacement = replacement
        self.is_parameter = is_parameter
        self.system_id = system_id
        self.public_id = public_id
        self.notation = notation

    @property
    def is_internal(self) -> bool:
        """True for entities defined with a literal replacement text."""
        return self.replacement is not None

    @property
    def is_unparsed(self) -> bool:
        """True for NDATA (unparsed) entities."""
        return self.notation is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "%" if self.is_parameter else "&"
        return f"EntityDefinition({kind}{self.name};)"


class EntityTable:
    """Registry of general and parameter entities for one DTD."""

    def __init__(self) -> None:
        self.general: dict[str, EntityDefinition] = {}
        self.parameter: dict[str, EntityDefinition] = {}

    def define(self, definition: EntityDefinition) -> None:
        """Register *definition*; first declaration wins (per the spec)."""
        table = self.parameter if definition.is_parameter else self.general
        table.setdefault(definition.name, definition)

    def lookup_general(self, name: str) -> EntityDefinition | None:
        return self.general.get(name)

    def lookup_parameter(self, name: str) -> EntityDefinition | None:
        return self.parameter.get(name)

    def internal_general(self) -> dict[str, str]:
        """Mapping of internal general entity name -> replacement text.

        This is exactly what the paper proposes storing in the extended
        meta-database (Section 6.1).
        """
        return {
            name: d.replacement
            for name, d in self.general.items()
            if d.is_internal
        }

    # -- expansion ----------------------------------------------------------

    def expand_general(self, name: str, _stack: tuple[str, ...] = ()) -> str:
        """Fully expand general entity *name* to its replacement text.

        Nested entity references inside the replacement are expanded
        recursively.  Raises :class:`EntityError` for undefined entities,
        recursive definitions, or runaway expansion.
        """
        if name in PREDEFINED_ENTITIES:
            return PREDEFINED_ENTITIES[name]
        if name in _stack:
            chain = " -> ".join(_stack + (name,))
            raise EntityError(f"recursive entity reference: {chain}")
        definition = self.general.get(name)
        if definition is None:
            raise EntityError(f"undefined entity '&{name};'")
        if definition.is_unparsed:
            raise EntityError(
                f"reference to unparsed entity '&{name};' in content")
        if not definition.is_internal:
            raise EntityError(
                f"external entity '&{name};' cannot be resolved offline")
        return self.expand_text(definition.replacement,
                                _stack=_stack + (name,))

    def expand_text(self, text: str, _stack: tuple[str, ...] = ()) -> str:
        """Expand every general entity and character reference in *text*."""
        out: list[str] = []
        i = 0
        length = len(text)
        budget = MAX_EXPANSION_SIZE
        while i < length:
            ch = text[i]
            if ch != "&":
                out.append(ch)
                i += 1
                continue
            end = text.find(";", i + 1)
            if end == -1:
                raise EntityError("unterminated entity reference")
            body = text[i + 1:end]
            expanded = (
                expand_char_reference(body)
                if body.startswith("#")
                else self.expand_general(body, _stack=_stack)
            )
            budget -= len(expanded)
            if budget < 0:
                raise EntityError("entity expansion exceeds size limit")
            out.append(expanded)
            i = end + 1
        return "".join(out)


def expand_char_reference(body: str) -> str:
    """Expand a character reference body (``#38`` or ``#x26``)."""
    digits = body[1:]
    try:
        code = int(digits[1:], 16) if digits[:1] in ("x", "X") else int(digits)
    except ValueError:
        raise EntityError(f"malformed character reference '&{body};'") from None
    try:
        return chr(code)
    except (ValueError, OverflowError):
        raise EntityError(
            f"character reference '&{body};' out of range") from None


def escape_text(text: str) -> str:
    """Escape character data for serialization into element content."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(text: str, quote: str = '"') -> str:
    """Escape character data for serialization into an attribute value."""
    escaped = text.replace("&", "&amp;").replace("<", "&lt;")
    if quote == '"':
        return escaped.replace('"', "&quot;")
    return escaped.replace("'", "&apos;")


def resubstitute(text: str, definitions: dict[str, str]) -> str:
    """Replace literal occurrences of entity replacement texts by references.

    This is the recovery step of Section 6.1: given the internal entity
    definitions preserved in the meta-table, rewrite stored character
    data so the original ``&name;`` references reappear.  Longer
    replacement texts are substituted first so overlapping definitions
    behave deterministically.
    """
    ordered = sorted(definitions.items(), key=lambda kv: -len(kv[1]))
    for name, replacement in ordered:
        if replacement:
            text = text.replace(replacement, f"&{name};")
    return text
