"""Shared machinery for the generic relational mappings.

The paper's motivation (Section 1) contrasts its content-oriented
object-relational mapping with the *structure-oriented* relational
algorithms of Florescu & Kossmann [5] and Shanmugasundaram et al. [9]:
generic edge/attribute tables and DTD inlining.  Those baselines are
implemented in this package so the reproduction can measure the two
drawbacks the paper names — the "high degree of decomposition ...
which turns the upload of a document into a large number of relational
insert operations" and the loss of non-data content.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ordb.identifiers import MAX_IDENTIFIER_LENGTH, is_reserved
from repro.xmlkit.dom import Document, Element

#: Upper bound for shredded text values (same default as Section 4.1).
VALUE_LENGTH = 4000


@dataclass
class LoadReport:
    """What it took to load one document."""

    doc_id: int
    statements: list[str] = field(default_factory=list)

    @property
    def insert_count(self) -> int:
        return len(self.statements)


def sql_quote(text: str) -> str:
    """Render a Python string as a SQL string literal."""
    return "'" + text.replace("'", "''") + "'"


def sanitize_name(name: str, prefix: str = "", used: set[str] | None = None
                  ) -> str:
    """Make *name* a legal, unique SQL identifier.

    Applies the same rules Section 5 worries about: strip illegal
    characters, avoid reserved words, respect the 30-character limit,
    and disambiguate collisions with a numeric suffix.
    """
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_"
                      for ch in name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = "X" + cleaned
    candidate = prefix + cleaned
    if is_reserved(candidate):
        candidate += "_"
    candidate = candidate[:MAX_IDENTIFIER_LENGTH]
    if used is None:
        return candidate
    base = candidate
    suffix = 1
    while candidate.upper() in used:
        suffix += 1
        tail = str(suffix)
        candidate = base[:MAX_IDENTIFIER_LENGTH - len(tail)] + tail
    used.add(candidate.upper())
    return candidate


def clip_value(text: str) -> str:
    """Truncate shredded text to the relational value length."""
    return text[:VALUE_LENGTH]


def document_root(document: Document | Element) -> Element:
    """Accept either a Document or an Element for loading APIs."""
    if isinstance(document, Document):
        return document.root_element
    return document


class NodeIdAllocator:
    """Dense node ids for one shredding run (0 is the virtual root)."""

    def __init__(self) -> None:
        self._next = 0

    def allocate(self) -> int:
        self._next += 1
        return self._next
