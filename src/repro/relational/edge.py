"""The edge-table mapping of Florescu & Kossmann (reference [5]).

Every parent-child relationship of the document graph becomes one row
of a single ``EDGE`` table; character data lands in a separate
``VAL_TAB`` table.  The schema is document-independent ("structure
oriented"), which is exactly why loading a document explodes into many
INSERT statements — the drawback the paper quantifies against its
object-relational single-INSERT mapping.
"""

from __future__ import annotations

from repro.ordb.engine import Database
from repro.xmlkit.dom import Document, Element, Text, CDATASection
from .shredder import (
    LoadReport,
    NodeIdAllocator,
    clip_value,
    document_root,
    sql_quote,
)

_SCHEMA = """
CREATE TABLE EDGE(
  DOCID INTEGER NOT NULL,
  SOURCE INTEGER NOT NULL,
  ORDINAL INTEGER NOT NULL,
  NAME VARCHAR2(200) NOT NULL,
  FLAG VARCHAR2(4) NOT NULL,
  TARGET INTEGER NOT NULL);
CREATE TABLE VAL_TAB(
  DOCID INTEGER NOT NULL,
  NODEID INTEGER NOT NULL,
  VAL VARCHAR2(4000));
"""


class EdgeMapping:
    """Create, load and query the edge-table representation."""

    #: names understood by the FLAG column
    FLAG_ELEMENT = "ref"
    FLAG_VALUE = "val"

    def schema_statements(self) -> list[str]:
        from repro.ordb.sql.lexer import split_statements

        return split_statements(_SCHEMA)

    def install(self, db: Database) -> None:
        """Create the generic tables in *db*."""
        for statement in self.schema_statements():
            db.execute(statement)

    # -- loading ---------------------------------------------------------------

    def shred(self, document: Document | Element,
              doc_id: int) -> LoadReport:
        """Produce the INSERT statements that store one document."""
        report = LoadReport(doc_id)
        ids = NodeIdAllocator()
        root = document_root(document)
        self._shred_element(root, parent_id=0, ordinal=1, doc_id=doc_id,
                            ids=ids, report=report)
        return report

    def load(self, db: Database, document: Document | Element,
             doc_id: int) -> LoadReport:
        """Shred and execute; returns the report for measurement."""
        report = self.shred(document, doc_id)
        for statement in report.statements:
            db.execute(statement)
        return report

    def _shred_element(self, element: Element, parent_id: int,
                       ordinal: int, doc_id: int, ids: NodeIdAllocator,
                       report: LoadReport) -> None:
        node_id = ids.allocate()
        report.statements.append(
            f"INSERT INTO EDGE VALUES({doc_id}, {parent_id}, {ordinal},"
            f" {sql_quote(element.tag)}, '{self.FLAG_ELEMENT}',"
            f" {node_id})")
        child_ordinal = 0
        for name, attribute in element.attributes.items():
            child_ordinal += 1
            value_id = ids.allocate()
            report.statements.append(
                f"INSERT INTO EDGE VALUES({doc_id}, {node_id},"
                f" {child_ordinal}, {sql_quote('@' + name)},"
                f" '{self.FLAG_VALUE}', {value_id})")
            report.statements.append(
                f"INSERT INTO VAL_TAB VALUES({doc_id}, {value_id},"
                f" {sql_quote(clip_value(attribute.value))})")
        for child in element.children:
            if isinstance(child, Element):
                child_ordinal += 1
                self._shred_element(child, node_id, child_ordinal,
                                    doc_id, ids, report)
            elif isinstance(child, (Text, CDATASection)):
                if not child.data.strip(" \t\r\n"):
                    continue  # information loss: layout whitespace
                child_ordinal += 1
                value_id = ids.allocate()
                report.statements.append(
                    f"INSERT INTO EDGE VALUES({doc_id}, {node_id},"
                    f" {child_ordinal}, '#text', '{self.FLAG_VALUE}',"
                    f" {value_id})")
                report.statements.append(
                    f"INSERT INTO VAL_TAB VALUES({doc_id}, {value_id},"
                    f" {sql_quote(clip_value(child.data))})")
            # comments, PIs and entity references are dropped: the
            # information loss Section 1 attributes to these mappings.

    # -- querying ----------------------------------------------------------------

    def path_query(self, path: list[str], doc_id: int = 1) -> str:
        """SQL retrieving the text of elements at */a/b/c*.

        Each path step becomes a self-join of EDGE — the join chain the
        paper's dot notation avoids (CLM2).
        """
        joins = []
        conditions = [f"e1.DOCID = {doc_id}", "e1.SOURCE = 0",
                      f"e1.NAME = {sql_quote(path[0])}"]
        for index in range(1, len(path)):
            conditions.append(
                f"e{index + 1}.SOURCE = e{index}.TARGET")
            conditions.append(
                f"e{index + 1}.NAME = {sql_quote(path[index])}")
            conditions.append(f"e{index + 1}.DOCID = {doc_id}")
        for index in range(len(path)):
            joins.append(f"EDGE e{index + 1}")
        last = len(path)
        joins.append(f"EDGE t")
        joins.append("VAL_TAB v")
        conditions.append(f"t.SOURCE = e{last}.TARGET")
        conditions.append("t.NAME = '#text'")
        conditions.append(f"t.DOCID = {doc_id}")
        conditions.append("v.NODEID = t.TARGET")
        conditions.append(f"v.DOCID = {doc_id}")
        return ("SELECT v.VAL FROM " + ", ".join(joins)
                + " WHERE " + " AND ".join(conditions))

    # -- reconstruction -------------------------------------------------------------

    def reconstruct(self, db: Database, doc_id: int) -> Element:
        """Rebuild the element tree of one document from the tables."""
        edges = db.execute(
            f"SELECT e.SOURCE, e.ORDINAL, e.NAME, e.FLAG, e.TARGET"
            f" FROM EDGE e WHERE e.DOCID = {doc_id}").rows
        values = dict(db.execute(
            f"SELECT v.NODEID, v.VAL FROM VAL_TAB v"
            f" WHERE v.DOCID = {doc_id}").rows)
        children: dict[int, list[tuple]] = {}
        for source, ordinal, name, flag, target in edges:
            children.setdefault(int(source), []).append(
                (int(ordinal), name, flag, int(target)))
        for bucket in children.values():
            bucket.sort()

        def build(node_id: int, tag: str) -> Element:
            element = Element(tag)
            for _ordinal, name, flag, target in children.get(node_id, []):
                if flag == self.FLAG_ELEMENT:
                    element.append(build(target, name))
                elif name == "#text":
                    element.append(Text(str(values.get(target, ""))))
                else:
                    element.set(name[1:], str(values.get(target, "")))
            return element

        roots = children.get(0, [])
        if not roots:
            raise ValueError(f"document {doc_id} not found in EDGE table")
        _ordinal, name, _flag, target = roots[0]
        return build(target, name)
