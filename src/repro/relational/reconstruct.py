"""Join-based document reconstruction from shredded schemas.

The reverse direction of the generic mappings: rebuild an element tree
from the rows.  What cannot be rebuilt (comments, processing
instructions, entity references, prolog, layout whitespace) is exactly
the information loss the paper charges these mappings with; the
round-trip benchmark (CLM3) measures it with
:func:`repro.core.roundtrip.fidelity`.
"""

from __future__ import annotations

from repro.ordb.engine import Database
from repro.xmlkit.dom import Element, Text
from .edge import EdgeMapping
from .inlining import InliningMapping, Relation


def reconstruct_edge(db: Database, doc_id: int = 1) -> Element:
    """Rebuild a document stored through :class:`EdgeMapping`."""
    return EdgeMapping().reconstruct(db, doc_id)


def reconstruct_inlined(mapping: InliningMapping, db: Database,
                        doc_id: int = 1) -> Element:
    """Rebuild a document stored through :class:`InliningMapping`.

    Inlined scalar columns come back as child elements in DTD
    declaration order; relation-mapped children are fetched by
    PARENTID joins.  Element order across different child types is
    approximated by ordinal within each relation — another loss the
    generic mappings accept.
    """
    rows_by_relation: dict[str, list[tuple]] = {}
    for relation in mapping.relations.values():
        columns = [f"ID{relation.table}"]
        if relation.has_parent:
            columns.extend(["PARENTID", "PARENTCODE"])
        columns.append("ORDINAL")
        if relation.has_text:
            columns.append("VAL")
        columns.extend(column.name for column in relation.columns)
        select = ", ".join(f"t.{column}" for column in columns)
        result = db.execute(
            f"SELECT {select} FROM {relation.table} t")
        rows_by_relation[relation.element] = result.rows

    low = doc_id * 1_000_000
    high = (doc_id + 1) * 1_000_000

    def rows_for(relation: Relation, parent_id: int | None) -> list[tuple]:
        rows = rows_by_relation[relation.element]
        picked = []
        for row in rows:
            row_id = int(row[0])
            if not low < row_id < high:
                continue
            if relation.has_parent:
                row_parent = row[1]
                if parent_id is None:
                    if row_parent is not None:
                        continue
                elif row_parent is None or int(row_parent) != parent_id:
                    continue
            picked.append(row)
        ordinal_index = 3 if relation.has_parent else 1
        picked.sort(key=lambda row: int(row[ordinal_index]))
        return picked

    def build(relation: Relation, row: tuple) -> Element:
        element = Element(relation.element)
        # row layout: [id, (parentid, parentcode)?, ordinal, VAL?, cols...]
        index = 1 + (2 if relation.has_parent else 0) + 1
        if relation.has_text:
            value = row[index]
            index += 1
            if value:
                element.append(Text(str(value)))
        # rebuild inlined descendants
        holders: dict[tuple[str, ...], Element] = {(): element}
        for column in relation.columns:
            value = row[index]
            index += 1
            if value is None:
                continue
            if column.is_attribute:
                holder = _holder_for(holders, column.path, element)
                holder.set(column.attribute, str(value))
            else:
                holder = _holder_for(holders, column.path[:-1], element)
                child = Element(column.path[-1])
                child.append(Text(str(value)))
                holder.append(child)
                holders[column.path] = child
        # relation-mapped children
        row_id = int(row[0])
        for child_relation in mapping.relations.values():
            if not child_relation.has_parent:
                continue
            for child_row in rows_for(child_relation, row_id):
                if (child_row[2] is not None
                        and str(child_row[2]).upper()
                        != relation.table.upper()):
                    continue
                element.append(build(child_relation, child_row))
        return element

    root_relation = mapping.relations[mapping.root]
    roots = rows_for(root_relation, None)
    if not roots:
        raise ValueError(f"document {doc_id} not found")
    return build(root_relation, roots[0])


def _holder_for(holders: dict[tuple[str, ...], Element],
                path: tuple[str, ...], root: Element) -> Element:
    """Find or create the inlined ancestor element for *path*."""
    if path in holders:
        return holders[path]
    parent = _holder_for(holders, path[:-1], root) if path else root
    if not path:
        return root
    element = Element(path[-1])
    parent.append(element)
    holders[path] = element
    return element
