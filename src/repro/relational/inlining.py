"""DTD inlining in the style of Shanmugasundaram et al. (reference [9]).

The "shared inlining" idea: give a relation only to element types that
need one — the root, set-valued elements, elements shared by several
parents, and recursive elements — and fold every other descendant into
its owner's relation as path-named columns.  This is the strongest of
the generic relational baselines: far fewer INSERTs than edge tables,
but still multiple statements per document and join-based navigation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dtd.model import DTD
from repro.dtd.tree import recursive_elements, shared_elements
from repro.ordb.engine import Database
from repro.xmlkit.dom import Document, Element
from .shredder import (
    LoadReport,
    clip_value,
    document_root,
    sanitize_name,
    sql_quote,
)


@dataclass
class InlinedColumn:
    """A scalar column inlined into a relation."""

    name: str  # SQL column name
    path: tuple[str, ...]  # element path below the relation's element
    is_attribute: bool = False
    attribute: str | None = None


@dataclass
class Relation:
    """One generated relation and its inlined columns."""

    element: str
    table: str
    columns: list[InlinedColumn] = field(default_factory=list)
    has_parent: bool = False
    has_text: bool = False

    def create_statement(self) -> str:
        parts = [f"ID{self.table} INTEGER PRIMARY KEY"]
        if self.has_parent:
            parts.append("PARENTID INTEGER")
            parts.append("PARENTCODE VARCHAR2(64)")
        parts.append("ORDINAL INTEGER")
        if self.has_text:
            parts.append("VAL VARCHAR2(4000)")
        parts.extend(
            f"{column.name} VARCHAR2(4000)" for column in self.columns)
        return f"CREATE TABLE {self.table}(" + ", ".join(parts) + ")"


class InliningMapping:
    """Shared-inlining schema generation, loading and path queries."""

    def __init__(self, dtd: DTD, root: str | None = None):
        self.dtd = dtd
        if root is None:
            candidates = dtd.root_candidates()
            if len(candidates) != 1:
                raise ValueError(
                    f"cannot infer unique root from DTD: {candidates}")
            root = candidates[0]
        self.root = root
        self.relations: dict[str, Relation] = {}
        self._used_tables: set[str] = set()
        self._build()

    # -- schema analysis --------------------------------------------------------

    def _needs_relation(self, name: str) -> bool:
        return name in self._relation_elements

    def _build(self) -> None:
        shared = shared_elements(self.dtd)
        recursive = recursive_elements(self.dtd)
        repeated: set[str] = set()
        for declaration in self.dtd.elements.values():
            for child in declaration.content.child_summary():
                if child.repeatable:
                    repeated.add(child.name)
        self._relation_elements = (
            {self.root} | shared | recursive | repeated)
        # only elements actually reachable & declared get relations
        for name in list(self._relation_elements):
            if self.dtd.element(name) is None:
                self._relation_elements.discard(name)
        for name in self.dtd.declaration_order:
            if name in self._relation_elements:
                self._make_relation(name)

    def _make_relation(self, element_name: str) -> None:
        table = sanitize_name(element_name, prefix="R_",
                              used=self._used_tables)
        declaration = self.dtd.element(element_name)
        relation = Relation(
            element=element_name,
            table=table,
            has_parent=element_name != self.root,
            has_text=bool(declaration
                          and not declaration.content.has_element_children),
        )
        used_columns: set[str] = set()
        self._inline_into(relation, element_name, (), used_columns,
                          depth=0)
        self.relations[element_name] = relation

    def _inline_into(self, relation: Relation, element_name: str,
                     path: tuple[str, ...], used_columns: set[str],
                     depth: int) -> None:
        if depth > 32:
            return
        for attr_name in self.dtd.attributes_of(element_name):
            raw = ("_".join(path + (attr_name,)) if path
                   else f"{element_name}_{attr_name}")
            column = sanitize_name(raw, used=used_columns)
            relation.columns.append(InlinedColumn(
                column, path, is_attribute=True, attribute=attr_name))
        declaration = self.dtd.element(element_name)
        if declaration is None:
            return
        for child in declaration.content.child_summary():
            if self._needs_relation(child.name):
                continue  # reached via PARENTID from its own relation
            child_path = path + (child.name,)
            child_declaration = self.dtd.element(child.name)
            child_simple = (child_declaration is not None
                            and not child_declaration.content
                            .has_element_children)
            if child_simple:
                column = sanitize_name("_".join(child_path),
                                       used=used_columns)
                relation.columns.append(InlinedColumn(column, child_path))
            self._inline_into(relation, child.name, child_path,
                              used_columns, depth + 1)

    # -- schema ------------------------------------------------------------------

    def schema_statements(self) -> list[str]:
        return [relation.create_statement()
                for relation in self.relations.values()]

    def install(self, db: Database) -> None:
        for statement in self.schema_statements():
            db.execute(statement)

    # -- loading -------------------------------------------------------------------

    def shred(self, document: Document | Element,
              doc_id: int) -> LoadReport:
        report = LoadReport(doc_id)
        self._next_id = doc_id * 1_000_000
        root = document_root(document)
        if root.tag != self.root:
            raise ValueError(
                f"document root <{root.tag}> does not match mapping"
                f" root <{self.root}>")
        self._shred_element(root, None, None, 1, report)
        return report

    def load(self, db: Database, document: Document | Element,
             doc_id: int) -> LoadReport:
        report = self.shred(document, doc_id)
        for statement in report.statements:
            db.execute(statement)
        return report

    def _shred_element(self, element: Element, parent_id: int | None,
                       parent_code: str | None, ordinal: int,
                       report: LoadReport) -> int:
        relation = self.relations[element.tag]
        self._next_id += 1
        row_id = self._next_id
        values: list[str] = [str(row_id)]
        if relation.has_parent:
            values.append("NULL" if parent_id is None else str(parent_id))
            values.append("NULL" if parent_code is None
                          else sql_quote(parent_code))
        values.append(str(ordinal))
        if relation.has_text:
            values.append(sql_quote(clip_value(element.text())))
        for column in relation.columns:
            values.append(self._column_value(element, column))
        report.statements.append(
            f"INSERT INTO {relation.table} VALUES("
            + ", ".join(values) + ")")
        child_ordinal = 0
        for child in element.child_elements:
            if child.tag in self.relations:
                child_ordinal += 1
                self._shred_element(child, row_id, relation.table,
                                    child_ordinal, report)
            else:
                self._shred_descendant_relations(child, row_id,
                                                 relation.table, report)
        return row_id

    def _shred_descendant_relations(self, element: Element,
                                    owner_id: int, owner_code: str,
                                    report: LoadReport) -> None:
        """Relation-mapped elements nested below inlined ones still get
        rows, parented to the nearest relation-owning ancestor."""
        ordinal = 0
        for child in element.child_elements:
            if child.tag in self.relations:
                ordinal += 1
                self._shred_element(child, owner_id, owner_code, ordinal,
                                    report)
            else:
                self._shred_descendant_relations(child, owner_id,
                                                 owner_code, report)

    def _column_value(self, element: Element,
                      column: InlinedColumn) -> str:
        target: Element | None = element
        for step in column.path:
            target = target.find(step) if target is not None else None
        if target is None:
            return "NULL"
        if column.is_attribute:
            value = target.get(column.attribute)
            return "NULL" if value is None else sql_quote(
                clip_value(value))
        return sql_quote(clip_value(target.text()))

    # -- querying -------------------------------------------------------------------

    def path_query(self, path: list[str]) -> str:
        """SQL for the text at */a/b/.../leaf* with parent-child joins.

        Only path steps that own relations become joins; inlined steps
        are column lookups — this is why inlining beats edge tables on
        joins, while the object-relational mapping needs none at all.
        """
        hops: list[Relation] = []
        index = 0
        while index < len(path):
            step = path[index]
            if step in self.relations:
                hops.append(self.relations[step])
                index += 1
            else:
                break
        remainder = tuple(path[index:])
        if not hops:
            raise ValueError(
                f"path must start at relation element '{self.root}'")
        last = hops[-1]
        if remainder:
            column = self._find_column(last, remainder)
            select = f"t{len(hops)}.{column}"
        elif last.has_text:
            select = f"t{len(hops)}.VAL"
        else:
            select = f"t{len(hops)}.ID{last.table}"
        joins = [f"{hop.table} t{position + 1}"
                 for position, hop in enumerate(hops)]
        conditions: list[str] = []
        for position in range(1, len(hops)):
            conditions.append(
                f"t{position + 1}.PARENTID = t{position}."
                f"ID{hops[position - 1].table}")
        where = (" WHERE " + " AND ".join(conditions)) if conditions else ""
        return f"SELECT {select} FROM " + ", ".join(joins) + where

    def _find_column(self, relation: Relation,
                     path: tuple[str, ...]) -> str:
        for column in relation.columns:
            if column.path == path and not column.is_attribute:
                return column.name
        raise ValueError(
            f"no inlined column for path {'/'.join(path)} in"
            f" {relation.table}")
