"""Generic relational baseline mappings (references [5], [9] of the paper).

These are the comparison points of the paper's argument: edge tables
and attribute tables (structure-oriented, Florescu & Kossmann) and DTD
inlining (content-oriented, Shanmugasundaram et al.).  Each exposes
``schema_statements`` / ``install`` / ``shred`` / ``load`` /
``path_query`` so the CLM1–CLM3 benchmarks can compare them against the
object-relational mapping on identical documents.
"""

from .attribute import AttributeMapping
from .edge import EdgeMapping
from .inlining import InliningMapping, Relation
from .reconstruct import reconstruct_edge, reconstruct_inlined
from .shredder import LoadReport, sanitize_name, sql_quote

__all__ = [
    "AttributeMapping",
    "EdgeMapping",
    "InliningMapping",
    "LoadReport",
    "Relation",
    "reconstruct_edge",
    "reconstruct_inlined",
    "sanitize_name",
    "sql_quote",
]
