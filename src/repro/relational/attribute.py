"""The attribute-table mapping of Florescu & Kossmann (reference [5]).

A horizontal partition of the edge table: one table per distinct
element/attribute name.  Still structure-oriented and still heavily
decomposing, but path queries touch smaller tables than the single
EDGE table.
"""

from __future__ import annotations

from repro.ordb.engine import Database
from repro.xmlkit.dom import CDATASection, Document, Element, Text
from .shredder import (
    LoadReport,
    NodeIdAllocator,
    clip_value,
    document_root,
    sanitize_name,
    sql_quote,
)


class AttributeMapping:
    """One ``A_<name>`` table per element/attribute name + VAL table."""

    def __init__(self) -> None:
        #: original name -> sanitized table name (populated by prepare)
        self.tables: dict[str, str] = {}
        self._used: set[str] = set()

    # -- schema -------------------------------------------------------------------

    def table_for(self, name: str) -> str:
        table = self.tables.get(name)
        if table is None:
            table = sanitize_name(name, prefix="A_", used=self._used)
            self.tables[name] = table
        return table

    def prepare(self, names: list[str]) -> None:
        """Pre-register tables for the given element/attribute names."""
        for name in names:
            self.table_for(name)

    def schema_statements(self) -> list[str]:
        statements = [
            f"CREATE TABLE {table}("
            f" DOCID INTEGER NOT NULL,"
            f" SOURCE INTEGER NOT NULL,"
            f" ORDINAL INTEGER NOT NULL,"
            f" FLAG VARCHAR2(4) NOT NULL,"
            f" TARGET INTEGER NOT NULL)"
            for table in self.tables.values()
        ]
        statements.append(
            "CREATE TABLE VAL_TAB("
            " DOCID INTEGER NOT NULL,"
            " NODEID INTEGER NOT NULL,"
            " VAL VARCHAR2(4000))")
        return statements

    def install(self, db: Database) -> None:
        for statement in self.schema_statements():
            db.execute(statement)

    def collect_names(self, document: Document | Element) -> list[str]:
        """All element and attribute names used in *document*."""
        names: list[str] = []
        seen: set[str] = set()
        for node in document_root(document).iter():
            if isinstance(node, Element):
                if node.tag not in seen:
                    seen.add(node.tag)
                    names.append(node.tag)
                for attribute in node.attributes:
                    marked = "@" + attribute
                    if marked not in seen:
                        seen.add(marked)
                        names.append(marked)
        return names

    # -- loading -------------------------------------------------------------------

    def shred(self, document: Document | Element,
              doc_id: int) -> LoadReport:
        report = LoadReport(doc_id)
        ids = NodeIdAllocator()
        self._shred_element(document_root(document), 0, 1, doc_id, ids,
                            report)
        return report

    def load(self, db: Database, document: Document | Element,
             doc_id: int) -> LoadReport:
        report = self.shred(document, doc_id)
        for statement in report.statements:
            db.execute(statement)
        return report

    def _shred_element(self, element: Element, parent_id: int,
                       ordinal: int, doc_id: int, ids: NodeIdAllocator,
                       report: LoadReport) -> None:
        node_id = ids.allocate()
        table = self.table_for(element.tag)
        report.statements.append(
            f"INSERT INTO {table} VALUES({doc_id}, {parent_id},"
            f" {ordinal}, 'ref', {node_id})")
        child_ordinal = 0
        for name, attribute in element.attributes.items():
            child_ordinal += 1
            value_id = ids.allocate()
            attr_table = self.table_for("@" + name)
            report.statements.append(
                f"INSERT INTO {attr_table} VALUES({doc_id}, {node_id},"
                f" {child_ordinal}, 'val', {value_id})")
            report.statements.append(
                f"INSERT INTO VAL_TAB VALUES({doc_id}, {value_id},"
                f" {sql_quote(clip_value(attribute.value))})")
        for child in element.children:
            if isinstance(child, Element):
                child_ordinal += 1
                self._shred_element(child, node_id, child_ordinal,
                                    doc_id, ids, report)
            elif isinstance(child, (Text, CDATASection)):
                if not child.data.strip(" \t\r\n"):
                    continue
                child_ordinal += 1
                # text hangs off its element directly in VAL_TAB:
                # NODEID is the owning element's node id.
                report.statements.append(
                    f"INSERT INTO VAL_TAB VALUES({doc_id}, {node_id},"
                    f" {sql_quote(clip_value(child.data))})")

    # -- querying ------------------------------------------------------------------

    def path_query(self, path: list[str], doc_id: int = 1) -> str:
        """Join chain across the per-name tables for */a/b/c*."""
        joins: list[str] = []
        conditions: list[str] = []
        for index, step in enumerate(path):
            table = self.table_for(step)
            joins.append(f"{table} e{index + 1}")
            conditions.append(f"e{index + 1}.DOCID = {doc_id}")
            if index == 0:
                conditions.append("e1.SOURCE = 0")
            else:
                conditions.append(
                    f"e{index + 1}.SOURCE = e{index}.TARGET")
        joins.append("VAL_TAB v")
        conditions.append(f"v.DOCID = {doc_id}")
        conditions.append(f"v.NODEID = e{len(path)}.TARGET")
        return ("SELECT v.VAL FROM " + ", ".join(joins)
                + " WHERE " + " AND ".join(conditions))
