"""Command-line interface: the XML2Oracle utility as a console tool.

The original XML2Oracle was an interactive GUI program (Section 3);
this CLI exposes the same pipeline as one-shot commands:

.. code-block:: console

   python -m repro schema  doc.xml            # emit the DDL script
   python -m repro load    doc.xml            # emit DDL + INSERTs
   python -m repro query   doc.xml /Uni/Name  # run a path query
   python -m repro roundtrip doc.xml          # fidelity report
   python -m repro ingest  a.xml b.xml c.xml  # transactional bulk load
   python -m repro stats   a.xml b.xml        # ingest + metrics JSON
   python -m repro trace   doc.xml            # ingest + span tree
   python -m repro demo                       # Appendix A walkthrough
   python -m repro db checkpoint --db-path D  # snapshot + truncate WAL
   python -m repro db recover --db-path D     # replay, report, verify

The ingest family accepts ``--db-path DIR`` to load into a durable
database (write-ahead logged; ``--fsync`` picks the policy); the
``db`` group manages such a directory afterwards.  See
``docs/robustness.md`` for the durability guarantees.

Every pipeline command accepts ``--trace`` (print the span tree to
stderr) and ``--slow-ms N`` (log statements slower than N ms);
``query`` additionally takes ``--explain`` to print the evaluation
plan instead of running the query.  See ``docs/observability.md``.

Documents must carry their DTD in the internal subset (as the
Appendix A sample does) or supply one with ``--dtd file.dtd``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core import RetryPolicy, XML2Oracle, compare
from repro.core.plan import MappingConfig
from repro.dtd import parse_dtd
from repro.obs import Observability
from repro.ordb import (
    CompatibilityMode,
    Database,
    FSYNC_POLICIES,
    verify_integrity,
)
from repro.ordb.errors import OrdbError
from repro.xmlkit import parse as parse_xml


def _mode(name: str) -> CompatibilityMode:
    return (CompatibilityMode.ORACLE8 if name == "oracle8"
            else CompatibilityMode.ORACLE9)


def _slow_threshold(args) -> float | None:
    slow_ms = getattr(args, "slow_ms", None)
    return None if slow_ms is None else slow_ms / 1000.0


def _observability(args, force: bool = False) -> Observability | None:
    """An enabled Observability when any flag asks for one."""
    if not (force or getattr(args, "trace", False)
            or getattr(args, "slow_ms", None) is not None):
        return None
    return Observability(enabled=True,
                         slow_query_threshold=_slow_threshold(args))


def _report_observability(tool: XML2Oracle, args) -> None:
    """Print the span tree / slow-query log to stderr when asked."""
    obs = tool.obs
    if not obs.enabled:
        return
    if getattr(args, "trace", False):
        print("-- trace " + "-" * 51, file=sys.stderr)
        print(obs.tracer.render(), file=sys.stderr)
    if obs.slow_log.enabled:
        print(obs.slow_log.render_text(), file=sys.stderr)


def _load_inputs(args) -> tuple:
    """Read the document and its DTD per the CLI conventions."""
    document = parse_xml(Path(args.document).read_text())
    if args.dtd:
        dtd = parse_dtd(Path(args.dtd).read_text())
    elif document.doctype is not None and document.doctype.dtd:
        dtd = document.doctype.dtd
    else:
        raise SystemExit(
            "error: the document has no internal DTD subset;"
            " pass --dtd FILE")
    return document, dtd


def _make_tool(args, obs: Observability | None = None) -> XML2Oracle:
    config = MappingConfig()
    if getattr(args, "clob", False):
        config.use_clob_for_text = True
    for hint in getattr(args, "hint", None) or []:
        if "=" not in hint:
            raise SystemExit(
                f"error: --hint must be NAME=SQLTYPE, got {hint!r}")
        name, sql_type = hint.split("=", 1)
        config.type_hints[name] = sql_type
    if obs is None:
        obs = _observability(args)
    db = None
    if getattr(args, "db_path", None):
        db = Database(_mode(args.mode), path=args.db_path,
                      fsync=getattr(args, "fsync", None) or "commit")
    tool = XML2Oracle(db=db, mode=_mode(args.mode), config=config,
                      obs=obs)
    return tool


def cmd_schema(args) -> int:
    document, dtd = _load_inputs(args)
    tool = _make_tool(args)
    schema = tool.register_schema(dtd, root=args.root,
                                  sample_document=document)
    print(schema.script.text)
    for warning in schema.plan.warnings:
        print(f"-- warning: {warning}", file=sys.stderr)
    _report_observability(tool, args)
    return 0


def cmd_load(args) -> int:
    document, dtd = _load_inputs(args)
    tool = _make_tool(args)
    tool.register_schema(dtd, root=args.root, sample_document=document)
    stored = tool.store(document, doc_name=Path(args.document).name)
    print(f"-- document stored as DocID {stored.doc_id} with"
          f" {stored.load_result.insert_count} INSERT and"
          f" {stored.load_result.update_count} UPDATE statement(s)")
    for statement in stored.load_result.statements:
        print(statement + ";")
    _report_observability(tool, args)
    return 0


def cmd_query(args) -> int:
    document, dtd = _load_inputs(args)
    tool = _make_tool(args)
    tool.register_schema(dtd, root=args.root, sample_document=document)
    tool.store(document)
    predicate = None
    if args.predicate:
        if "=" not in args.predicate:
            raise SystemExit("error: --predicate must be path=value")
        path, value = args.predicate.split("=", 1)
        predicate = (path, "=", value)
    rendered = tool.path_query(args.path, predicate=predicate,
                               select=args.select)
    print(f"-- SQL: {rendered.sql}")
    if args.explain:
        plan = tool.db.explain(rendered.sql)
        print(plan.render())
        _report_observability(tool, args)
        return 0
    result = tool.db.execute(rendered.sql)
    print(result.format_table())
    print(f"-- {len(result.rows)} row(s)")
    _report_observability(tool, args)
    return 0


def cmd_roundtrip(args) -> int:
    document, dtd = _load_inputs(args)
    tool = _make_tool(args)
    tool.register_schema(dtd, root=args.root, sample_document=document)
    stored = tool.store(document, doc_name=Path(args.document).name)
    rebuilt = tool.fetch(stored.doc_id)
    report = compare(document, rebuilt)
    print(report.describe())
    if args.emit:
        print("-" * 60)
        print(tool.fetch_text(stored.doc_id, indent="  "))
    _report_observability(tool, args)
    return 0 if report.score == 1.0 else 1


def _ingest_into(tool: XML2Oracle, args):
    """Register a schema and bulk-load ``args.documents`` into
    *tool*; returns the IngestReport, or None after printing the
    error (shared by ``ingest``, ``stats`` and ``trace``)."""
    paths = [Path(name) for name in args.documents]
    # the sample document feeds IDREF-target inference (Section 4.4);
    # without one, IDREF attributes stay plain VARCHAR columns
    sample = None
    internal = None
    for path in paths:
        try:
            probe = parse_xml(path.read_text())
        except Exception:
            continue  # bad file: quarantined by store_many below
        if sample is None:
            sample = probe
        if probe.doctype is not None and probe.doctype.dtd:
            internal = probe
            break
    if args.dtd:
        dtd = parse_dtd(Path(args.dtd).read_text())
    elif internal is not None:
        dtd, sample = internal.doctype.dtd, internal
    else:
        raise SystemExit(
            "error: no readable document carries an internal DTD"
            " subset; pass --dtd FILE")
    try:
        tool.register_schema(dtd, root=args.root,
                             sample_document=sample)
    except OrdbError as error:
        print(f"error: cannot register schema: {error}",
              file=sys.stderr)
        if tool.db.wal is not None:
            print("hint: the durable database already holds this"
                  " schema; inspect it with 'repro db recover' or"
                  " ingest into a fresh --db-path", file=sys.stderr)
        return None
    if args.fault:
        site, _, position = args.fault.partition(":")
        if not position.isdigit():
            raise SystemExit(
                "error: --fault must be SITE:INDEX, e.g. storage:3")
        try:
            tool.db.faults.arm(site=site or None, at=int(position))
        except ValueError as error:
            raise SystemExit(f"error: {error}") from None
    try:
        texts = [path.read_text() for path in paths]
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return None
    policy = RetryPolicy(max_attempts=max(1, args.retries + 1))
    try:
        report = tool.store_many(
            texts,
            continue_on_error=args.continue_on_error,
            retry=policy,
            doc_names=[path.name for path in paths],
            workers=args.workers)
    except Exception as error:
        print(f"error: batch aborted, all documents rolled back:"
              f" {error}", file=sys.stderr)
        print("hint: --continue-on-error quarantines bad documents"
              " instead", file=sys.stderr)
        return None
    return report


def cmd_ingest(args) -> int:
    tool = _make_tool(args)
    report = _ingest_into(tool, args)
    _report_observability(tool, args)
    tool.db.close()  # durable mode: sync the WAL before exiting
    if report is None:
        return 1
    print(report.describe())
    if tool.db.wal is not None:
        print(f"-- durable: {tool.db.stats['wal_appends']} WAL"
              f" record(s) at {args.db_path}")
    return 0 if report.ok else 1


def cmd_stats(args) -> int:
    """Ingest the documents with observability on, export metrics."""
    obs = Observability(enabled=True,
                        slow_query_threshold=_slow_threshold(args))
    tool = _make_tool(args, obs=obs)
    report = _ingest_into(tool, args)
    if report is None:
        return 1
    print(report.describe(), file=sys.stderr)
    if args.text:
        print(obs.render_text())
    else:
        payload = obs.export()
        payload["ingest"] = report.as_dict()
        payload["engine_stats"] = dict(tool.db.stats)
        text = json.dumps(payload, indent=2, default=str)
        if args.output and args.output != "-":
            Path(args.output).write_text(text + "\n")
            print(f"-- metrics written to {args.output}",
                  file=sys.stderr)
        else:
            print(text)
    _report_observability(tool, args)
    tool.db.close()
    return 0


def cmd_trace(args) -> int:
    """Ingest the documents with tracing on, print the span tree."""
    obs = Observability(enabled=True,
                        slow_query_threshold=_slow_threshold(args))
    tool = _make_tool(args, obs=obs)
    report = _ingest_into(tool, args)
    if report is None:
        return 1
    print(report.describe(), file=sys.stderr)
    print(obs.tracer.render())
    if obs.slow_log.enabled:
        print(obs.slow_log.render_text(), file=sys.stderr)
    tool.db.close()
    return 0 if report.ok else 1


def _open_durable(args) -> Database | None:
    """Open ``args.db_path`` durably; prints the error on failure."""
    where = Path(args.db_path)
    if not ((where / "wal.log").exists()
            or (where / "checkpoint.bin").exists()):
        print(f"error: {args.db_path} holds no durable database"
              " (no wal.log or checkpoint.bin)", file=sys.stderr)
        return None
    try:
        return Database(_mode(args.mode), path=args.db_path)
    except OrdbError as error:
        print(f"error: cannot open {args.db_path}: {error}",
              file=sys.stderr)
        return None


def _describe_recovery(db: Database) -> None:
    info = db.recovery_info
    source = ("checkpoint + log" if info["checkpoint_loaded"]
              else "log only")
    print(f"-- recovered from {source}:"
          f" {info['transactions_replayed']} transaction(s),"
          f" {info['statements_replayed']} statement(s) replayed,"
          f" {info['records_skipped']} stale record(s) skipped,"
          f" {info['torn_bytes_discarded']} torn byte(s) discarded"
          f" in {info['seconds'] * 1000.0:.1f} ms")


def cmd_db_checkpoint(args) -> int:
    db = _open_durable(args)
    if db is None:
        return 1
    _describe_recovery(db)
    info = db.checkpoint()
    print(f"-- checkpoint written to {info['path']}:"
          f" {info['bytes']} byte(s), {info['tables']} table(s),"
          f" commit sequence {info['commit_seq']}; WAL truncated")
    db.close()
    return 0


def cmd_db_recover(args) -> int:
    db = _open_durable(args)
    if db is None:
        return 1
    _describe_recovery(db)
    print(f"-- {len(db.catalog.tables)} table(s),"
          f" {len(db.catalog.types)} type(s),"
          f" {len(db.catalog.views)} view(s)")
    status = 0
    if args.verify:
        problems = verify_integrity(db)
        if problems:
            for problem in problems:
                print(f"integrity: {problem}", file=sys.stderr)
            status = 1
        else:
            print("-- integrity verified: indexes consistent, all"
                  " REFs resolve")
    db.close()
    return status


def cmd_demo(args) -> int:
    from repro.workloads import SAMPLE_DOCUMENT

    document = parse_xml(SAMPLE_DOCUMENT)
    tool = XML2Oracle(mode=_mode(args.mode))
    schema = tool.register_schema(document.doctype.dtd)
    print("-- generated schema " + "-" * 40)
    print(schema.script.text)
    stored = tool.store(document, doc_name="appendix_a.xml")
    print(f"-- stored with {stored.load_result.insert_count}"
          f" INSERT statement(s)")
    result = tool.query(
        "/University/Student",
        predicate=("Course/Professor/PName", "=", "Jaeger"),
        select="LName")
    print("-- students of Professor Jaeger:",
          [row[0] for row in result.rows])
    print("-- reconstructed " + "-" * 43)
    print(tool.fetch_text(stored.doc_id, indent="  "))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XML2Oracle reproduction: map XML documents to an"
                    " embedded object-relational database.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def common(subparser, with_document: bool = True) -> None:
        subparser.add_argument(
            "--mode", choices=["oracle9", "oracle8"],
            default="oracle9",
            help="engine compatibility mode (Section 2.2)")
        subparser.add_argument(
            "--trace", action="store_true",
            help="print the span tree of the run to stderr")
        subparser.add_argument(
            "--slow-ms", type=float, metavar="MS",
            help="log statements slower than MS milliseconds")
        if with_document:
            subparser.add_argument("document",
                                   help="XML document file")
            subparser.add_argument(
                "--dtd", help="external DTD file (defaults to the"
                              " document's internal subset)")
            subparser.add_argument(
                "--root", help="root element (defaults to inference)")
            subparser.add_argument(
                "--clob", action="store_true",
                help="use CLOB for text leaves (Section 7)")
            subparser.add_argument(
                "--hint", action="append", metavar="NAME=SQLTYPE",
                help="type a leaf element/attribute, e.g."
                     " CreditPts=NUMBER (Section 7 extension;"
                     " repeatable)")

    schema_parser = subparsers.add_parser(
        "schema", help="generate the DDL script for a document's DTD")
    common(schema_parser)
    schema_parser.set_defaults(handler=cmd_schema)

    load_parser = subparsers.add_parser(
        "load", help="generate DDL + the INSERT script for a document")
    common(load_parser)
    load_parser.set_defaults(handler=cmd_load)

    query_parser = subparsers.add_parser(
        "query", help="store a document and run a path query")
    common(query_parser)
    query_parser.add_argument("path",
                              help="element path, e.g. /Uni/Student")
    query_parser.add_argument(
        "--predicate", help="relative filter, e.g."
                            " Course/Professor/PName=Jaeger")
    query_parser.add_argument(
        "--select", help="relative projection path, e.g. LName")
    query_parser.add_argument(
        "--explain", action="store_true",
        help="print the evaluation plan instead of running the query")
    query_parser.set_defaults(handler=cmd_query)

    roundtrip_parser = subparsers.add_parser(
        "roundtrip", help="store, fetch and report fidelity")
    common(roundtrip_parser)
    roundtrip_parser.add_argument(
        "--emit", action="store_true",
        help="also print the reconstructed document")
    roundtrip_parser.set_defaults(handler=cmd_roundtrip)

    def ingest_common(subparser) -> None:
        common(subparser, with_document=False)
        subparser.add_argument("documents", nargs="+",
                               help="XML document files")
        subparser.add_argument(
            "--dtd", help="external DTD file (defaults to the first"
                          " document's internal subset)")
        subparser.add_argument(
            "--root", help="root element (defaults to inference)")
        subparser.add_argument(
            "--continue-on-error", action="store_true",
            help="quarantine failing documents and keep going instead"
                 " of rolling back the whole batch")
        subparser.add_argument(
            "--retries", type=int, default=2, metavar="N",
            help="extra attempts for transient faults (default 2)")
        subparser.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="load with N parallel sessions (per-document"
                 " transactions; lock conflicts retry like any"
                 " transient fault; default: serial, one transaction)")
        subparser.add_argument(
            "--fault", metavar="SITE:INDEX",
            help="inject a fault at the INDEX-th boundary of SITE"
                 " (parse, statement, lock, storage, commit or wal;"
                 " testing aid)")
        subparser.add_argument(
            "--db-path", metavar="DIR",
            help="load into a durable database at DIR (write-ahead"
                 " logged; recovers any existing state first)")
        subparser.add_argument(
            "--fsync", choices=list(FSYNC_POLICIES),
            default="commit",
            help="WAL fsync policy for --db-path (default: commit)")

    ingest_parser = subparsers.add_parser(
        "ingest",
        help="bulk-load documents in one transaction with"
             " per-document savepoints, retries and quarantine")
    ingest_common(ingest_parser)
    ingest_parser.set_defaults(handler=cmd_ingest)

    stats_parser = subparsers.add_parser(
        "stats",
        help="ingest documents with observability on and export the"
             " collected metrics (JSON by default)")
    ingest_common(stats_parser)
    stats_parser.add_argument(
        "--text", action="store_true",
        help="plain-text metrics instead of JSON")
    stats_parser.add_argument(
        "--output", "-o", metavar="FILE",
        help="write the JSON to FILE instead of stdout ('-' ="
             " stdout)")
    stats_parser.set_defaults(handler=cmd_stats)

    trace_parser = subparsers.add_parser(
        "trace",
        help="ingest documents with tracing on and print the span"
             " tree with per-phase latencies")
    ingest_common(trace_parser)
    trace_parser.set_defaults(handler=cmd_trace)

    db_parser = subparsers.add_parser(
        "db", help="manage a durable database directory")
    db_subparsers = db_parser.add_subparsers(dest="db_command",
                                             required=True)

    def db_common(subparser) -> None:
        subparser.add_argument(
            "--db-path", metavar="DIR", required=True,
            help="durable database directory (wal.log +"
                 " checkpoint.bin)")
        subparser.add_argument(
            "--mode", choices=["oracle9", "oracle8"],
            default="oracle9",
            help="engine compatibility mode (Section 2.2)")

    checkpoint_parser = db_subparsers.add_parser(
        "checkpoint",
        help="recover the database, snapshot it durably and truncate"
             " the write-ahead log")
    db_common(checkpoint_parser)
    checkpoint_parser.set_defaults(handler=cmd_db_checkpoint)

    recover_parser = db_subparsers.add_parser(
        "recover",
        help="recover the database from checkpoint + WAL and report"
             " what was replayed")
    db_common(recover_parser)
    recover_parser.add_argument(
        "--verify", action="store_true",
        help="also check index consistency and REF integrity; exit 1"
             " on any problem")
    recover_parser.set_defaults(handler=cmd_db_recover)

    demo_parser = subparsers.add_parser(
        "demo", help="run the Appendix A walkthrough")
    common(demo_parser, with_document=False)
    demo_parser.set_defaults(handler=cmd_demo)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:  # e.g. `repro schema doc.xml | head`
        sys.stderr.close()
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
