"""Command-line interface: the XML2Oracle utility as a console tool.

The original XML2Oracle was an interactive GUI program (Section 3);
this CLI exposes the same pipeline as one-shot commands:

.. code-block:: console

   python -m repro schema  doc.xml            # emit the DDL script
   python -m repro load    doc.xml            # emit DDL + INSERTs
   python -m repro query   doc.xml /Uni/Name  # run a path query
   python -m repro roundtrip doc.xml          # fidelity report
   python -m repro ingest  a.xml b.xml c.xml  # transactional bulk load
   python -m repro stats   a.xml b.xml        # ingest + metrics JSON
   python -m repro trace   doc.xml            # ingest + span tree
   python -m repro demo                       # Appendix A walkthrough
   python -m repro db checkpoint --db-path D  # snapshot + truncate WAL
   python -m repro db recover --db-path D     # replay, report, verify
   python -m repro serve --port 1521          # network front end

``serve`` runs the engine as a fault-tolerant TCP server (see
``docs/robustness.md``); ``ingest`` and ``query`` accept
``--url ordb://host:port`` to run against it.  Exit codes follow the
error taxonomy: 75 (EX_TEMPFAIL) for transient failures a shell-level
retry may clear, 1 for permanent ones.

The ingest family accepts ``--db-path DIR`` to load into a durable
database (write-ahead logged; ``--fsync`` picks the policy); the
``db`` group manages such a directory afterwards.  Adding
``--shards N`` hash-partitions documents across N embedded engines,
each with its own WAL and checkpoint (``docs/architecture.md``); an
existing sharded directory reopens with its manifest's shard count,
``db rebalance --shards M`` changes it, and ``db recover --verify``
checks integrity on every shard.  See ``docs/robustness.md`` for the
durability guarantees.

Every pipeline command accepts ``--trace`` (print the span tree to
stderr) and ``--slow-ms N`` (log statements slower than N ms);
``query`` additionally takes ``--explain`` to print the evaluation
plan instead of running the query.  See ``docs/observability.md``.

Documents must carry their DTD in the internal subset (as the
Appendix A sample does) or supply one with ``--dtd file.dtd``.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from pathlib import Path

from repro.core import RetryPolicy, XML2Oracle, compare
from repro.core.ingest import classify
from repro.core.plan import MappingConfig
from repro.dtd import parse_dtd
from repro.obs import Observability
from repro.ordb import (
    CompatibilityMode,
    Database,
    FSYNC_POLICIES,
    ShardedDatabase,
    verify_integrity,
)
from repro.ordb.errors import OrdbError, is_transient
from repro.xmlkit import parse as parse_xml

#: Exit code for failures a shell-level retry may clear (EX_TEMPFAIL,
#: the sysexits.h convention); permanent failures exit 1.  Lets
#: wrapper scripts drive retries off the engine's error taxonomy:
#: ``repro ingest ... || [ $? -eq 75 ] && retry_later``.
EXIT_TRANSIENT = 75


def _mode(name: str) -> CompatibilityMode:
    return (CompatibilityMode.ORACLE8 if name == "oracle8"
            else CompatibilityMode.ORACLE9)


def _slow_threshold(args) -> float | None:
    slow_ms = getattr(args, "slow_ms", None)
    return None if slow_ms is None else slow_ms / 1000.0


def _observability(args, force: bool = False) -> Observability | None:
    """An enabled Observability when any flag asks for one."""
    if not (force or getattr(args, "trace", False)
            or getattr(args, "slow_ms", None) is not None):
        return None
    return Observability(enabled=True,
                         slow_query_threshold=_slow_threshold(args))


def _report_observability(tool: XML2Oracle, args) -> None:
    """Print the span tree / slow-query log to stderr when asked."""
    obs = tool.obs
    if not obs.enabled:
        return
    if getattr(args, "trace", False):
        print("-- trace " + "-" * 51, file=sys.stderr)
        print(obs.tracer.render(), file=sys.stderr)
    if obs.slow_log.enabled:
        print(obs.slow_log.render_text(), file=sys.stderr)


def _load_inputs(args) -> tuple:
    """Read the document and its DTD per the CLI conventions."""
    document = parse_xml(Path(args.document).read_text())
    if args.dtd:
        dtd = parse_dtd(Path(args.dtd).read_text())
    elif document.doctype is not None and document.doctype.dtd:
        dtd = document.doctype.dtd
    else:
        raise SystemExit(
            "error: the document has no internal DTD subset;"
            " pass --dtd FILE")
    return document, dtd


def _make_tool(args, obs: Observability | None = None) -> XML2Oracle:
    config = MappingConfig()
    if getattr(args, "clob", False):
        config.use_clob_for_text = True
    for hint in getattr(args, "hint", None) or []:
        if "=" not in hint:
            raise SystemExit(
                f"error: --hint must be NAME=SQLTYPE, got {hint!r}")
        name, sql_type = hint.split("=", 1)
        config.type_hints[name] = sql_type
    if obs is None:
        obs = _observability(args)
    db = _make_db(args)
    tool = XML2Oracle(db=db, mode=_mode(args.mode), config=config,
                      obs=obs)
    return tool


def _make_db(args) -> Database | ShardedDatabase | None:
    """The embedded engine for ``--db-path``: a hash-sharded router
    when ``--shards`` asks for one or the directory already carries a
    shard manifest (the manifest's own count then wins), a single
    engine otherwise, None for in-memory runs without a path."""
    path = getattr(args, "db_path", None)
    shards = getattr(args, "shards", None)
    if not path:
        if shards:
            return ShardedDatabase(n_shards=shards,
                                   mode=_mode(args.mode))
        return None
    fsync = getattr(args, "fsync", None) or "commit"
    if shards is None and (Path(path)
                           / ShardedDatabase.MANIFEST).exists():
        shards = 1  # placeholder: the manifest dictates the count
    if shards:
        return ShardedDatabase(n_shards=shards, mode=_mode(args.mode),
                               path=path, fsync=fsync)
    return Database(_mode(args.mode), path=path, fsync=fsync)


def cmd_schema(args) -> int:
    document, dtd = _load_inputs(args)
    tool = _make_tool(args)
    schema = tool.register_schema(dtd, root=args.root,
                                  sample_document=document)
    print(schema.script.text)
    for warning in schema.plan.warnings:
        print(f"-- warning: {warning}", file=sys.stderr)
    _report_observability(tool, args)
    return 0


def cmd_load(args) -> int:
    document, dtd = _load_inputs(args)
    tool = _make_tool(args)
    tool.register_schema(dtd, root=args.root, sample_document=document)
    stored = tool.store(document, doc_name=Path(args.document).name)
    print(f"-- document stored as DocID {stored.doc_id} with"
          f" {stored.load_result.insert_count} INSERT and"
          f" {stored.load_result.update_count} UPDATE statement(s)")
    for statement in stored.load_result.statements:
        print(statement + ";")
    _report_observability(tool, args)
    return 0


def _parse_predicate(args) -> tuple | None:
    if not args.predicate:
        return None
    if "=" not in args.predicate:
        raise SystemExit("error: --predicate must be path=value")
    path, value = args.predicate.split("=", 1)
    return (path, "=", value)


def _query_remote(args) -> int:
    """``repro query --url``: store and query on a remote server."""
    from repro.client import connect

    text = Path(args.document).read_text()
    dtd_text = Path(args.dtd).read_text() if args.dtd else None
    with connect(args.url) as conn:
        conn.register_schema(dtd=dtd_text, document=text,
                             root=args.root)
        stored = conn.store(text, root=args.root,
                            doc_name=Path(args.document).name)
        result = conn.query(args.path,
                            predicate=_parse_predicate(args),
                            select=args.select)
    print(f"-- queried {args.url} (DocID {stored['doc_id']})")
    print(result.format_table())
    print(f"-- {len(result.rows)} row(s)")
    return 0


def cmd_query(args) -> int:
    if getattr(args, "url", None):
        return _query_remote(args)
    document, dtd = _load_inputs(args)
    tool = _make_tool(args)
    tool.register_schema(dtd, root=args.root, sample_document=document)
    tool.store(document)
    predicate = _parse_predicate(args)
    rendered = tool.path_query(args.path, predicate=predicate,
                               select=args.select)
    print(f"-- SQL: {rendered.sql}")
    if args.explain:
        plan = tool.db.explain(rendered.sql)
        print(plan.render())
        _report_observability(tool, args)
        return 0
    result = tool.db.execute(rendered.sql)
    print(result.format_table())
    print(f"-- {len(result.rows)} row(s)")
    _report_observability(tool, args)
    return 0


def cmd_roundtrip(args) -> int:
    document, dtd = _load_inputs(args)
    tool = _make_tool(args)
    tool.register_schema(dtd, root=args.root, sample_document=document)
    stored = tool.store(document, doc_name=Path(args.document).name)
    rebuilt = tool.fetch(stored.doc_id)
    report = compare(document, rebuilt)
    print(report.describe())
    if args.emit:
        print("-" * 60)
        print(tool.fetch_text(stored.doc_id, indent="  "))
    _report_observability(tool, args)
    return 0 if report.score == 1.0 else 1


def _ingest_into(tool: XML2Oracle, args):
    """Register a schema and bulk-load ``args.documents`` into
    *tool*; returns the IngestReport, or None after printing the
    error (shared by ``ingest``, ``stats`` and ``trace``)."""
    paths = [Path(name) for name in args.documents]
    # the sample document feeds IDREF-target inference (Section 4.4);
    # without one, IDREF attributes stay plain VARCHAR columns
    sample = None
    internal = None
    for path in paths:
        try:
            probe = parse_xml(path.read_text())
        except Exception:
            continue  # bad file: quarantined by store_many below
        if sample is None:
            sample = probe
        if probe.doctype is not None and probe.doctype.dtd:
            internal = probe
            break
    if args.dtd:
        dtd = parse_dtd(Path(args.dtd).read_text())
    elif internal is not None:
        dtd, sample = internal.doctype.dtd, internal
    else:
        raise SystemExit(
            "error: no readable document carries an internal DTD"
            " subset; pass --dtd FILE")
    try:
        tool.register_schema(dtd, root=args.root,
                             sample_document=sample)
    except OrdbError as error:
        print(f"error: cannot register schema: {error}",
              file=sys.stderr)
        if tool.db.wal is not None:
            print("hint: the durable database already holds this"
                  " schema; inspect it with 'repro db recover' or"
                  " ingest into a fresh --db-path", file=sys.stderr)
        return None
    if args.fault:
        site, _, position = args.fault.partition(":")
        if not position.isdigit():
            raise SystemExit(
                "error: --fault must be SITE:INDEX, e.g. storage:3")
        try:
            tool.db.faults.arm(site=site or None, at=int(position))
        except ValueError as error:
            raise SystemExit(f"error: {error}") from None
    try:
        texts = [path.read_text() for path in paths]
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return None
    policy = RetryPolicy(max_attempts=max(1, args.retries + 1))
    try:
        report = tool.store_many(
            texts,
            continue_on_error=args.continue_on_error,
            retry=policy,
            doc_names=[path.name for path in paths],
            workers=args.workers)
    except Exception as error:
        print(f"error: batch aborted, all documents rolled back:"
              f" {error}", file=sys.stderr)
        print("hint: --continue-on-error quarantines bad documents"
              " instead", file=sys.stderr)
        return None
    return report


def _ingest_remote(args) -> int:
    """``repro ingest --url``: ship documents to a running server.

    Every document commits in its own server-side transaction (as
    ``--workers`` does locally); transient failures — shed requests,
    lost connections, lock timeouts — retry with jittered backoff
    through the connection pool before counting as failed.
    """
    from repro.client import ConnectionPool

    paths = [Path(name) for name in args.documents]
    policy = RetryPolicy(max_attempts=max(1, args.retries + 1))
    dtd_text = Path(args.dtd).read_text() if args.dtd else None
    sample_text = None
    for path in paths:
        try:
            text = path.read_text()
        except OSError:
            continue
        if sample_text is None or "<!DOCTYPE" in text:
            sample_text = text
        if "<!DOCTYPE" in text:
            break
    if dtd_text is None and sample_text is None:
        raise SystemExit("error: no readable document to infer a"
                         " schema from; pass --dtd FILE")
    with ConnectionPool(args.url) as pool:
        pool.run(lambda conn: conn.register_schema(
            dtd=dtd_text, document=sample_text, root=args.root),
            retry=policy)
        stored = 0
        classifications: list[str] = []
        for index, path in enumerate(paths):
            try:
                text = path.read_text()
            except OSError as error:
                print(f"[{index}] {path.name}: FAILED ({error})")
                classifications.append("permanent")
                continue
            try:
                info = pool.run(
                    lambda conn: conn.store(text, root=args.root,
                                            doc_name=path.name),
                    retry=policy)
            except Exception as error:
                kind = classify(error)
                classifications.append(kind)
                print(f"[{index}] {path.name}: FAILED"
                      f" ({kind}) — {error}")
                if not args.continue_on_error:
                    break
                continue
            stored += 1
            print(f"[{index}] {path.name}: stored as"
                  f" DocID {info['doc_id']} on {args.url}")
        print(f"-- {stored}/{len(paths)} document(s) stored remotely")
    if not classifications:
        return 0
    return (EXIT_TRANSIENT
            if all(kind == "transient" for kind in classifications)
            else 1)


def cmd_ingest(args) -> int:
    if getattr(args, "url", None):
        return _ingest_remote(args)
    tool = _make_tool(args)
    report = _ingest_into(tool, args)
    _report_observability(tool, args)
    tool.db.close()  # durable mode: sync the WAL before exiting
    if report is None:
        return 1
    print(report.describe())
    if tool.db.wal is not None:
        print(f"-- durable: {tool.db.stats['wal_appends']} WAL"
              f" record(s) at {args.db_path}")
    if report.ok:
        return 0
    # distinct exit codes let shell wrappers retry what retrying can
    # fix: 75 (EX_TEMPFAIL) when every failure was transient
    quarantined = report.quarantined
    if quarantined and all(outcome.classification == "transient"
                           for outcome in quarantined):
        return EXIT_TRANSIENT
    return 1


def cmd_stats(args) -> int:
    """Ingest the documents with observability on, export metrics."""
    obs = Observability(enabled=True,
                        slow_query_threshold=_slow_threshold(args))
    tool = _make_tool(args, obs=obs)
    report = _ingest_into(tool, args)
    if report is None:
        return 1
    print(report.describe(), file=sys.stderr)
    if args.text:
        print(obs.render_text())
    else:
        payload = obs.export()
        payload["ingest"] = report.as_dict()
        payload["engine_stats"] = dict(tool.db.stats)
        text = json.dumps(payload, indent=2, default=str)
        if args.output and args.output != "-":
            Path(args.output).write_text(text + "\n")
            print(f"-- metrics written to {args.output}",
                  file=sys.stderr)
        else:
            print(text)
    _report_observability(tool, args)
    tool.db.close()
    return 0


def cmd_trace(args) -> int:
    """Ingest the documents with tracing on, print the span tree."""
    obs = Observability(enabled=True,
                        slow_query_threshold=_slow_threshold(args))
    tool = _make_tool(args, obs=obs)
    report = _ingest_into(tool, args)
    if report is None:
        return 1
    print(report.describe(), file=sys.stderr)
    print(obs.tracer.render())
    if obs.slow_log.enabled:
        print(obs.slow_log.render_text(), file=sys.stderr)
    tool.db.close()
    return 0 if report.ok else 1


def _open_durable(args) -> Database | ShardedDatabase | None:
    """Open ``args.db_path`` durably; prints the error on failure.
    A directory carrying a shard manifest reopens as the full
    sharded cluster (the manifest dictates the shard count)."""
    where = Path(args.db_path)
    sharded = (where / ShardedDatabase.MANIFEST).exists()
    if not (sharded or (where / "wal.log").exists()
            or (where / "checkpoint.bin").exists()):
        print(f"error: {args.db_path} holds no durable database"
              " (no wal.log, checkpoint.bin or shards.json)",
              file=sys.stderr)
        return None
    try:
        if sharded:
            return ShardedDatabase(mode=_mode(args.mode),
                                   path=args.db_path)
        return Database(_mode(args.mode), path=args.db_path)
    except OrdbError as error:
        print(f"error: cannot open {args.db_path}: {error}",
              file=sys.stderr)
        return None


def _describe_recovery(db: Database | ShardedDatabase) -> None:
    info = db.recovery_info
    source = ("checkpoint + log" if info["checkpoint_loaded"]
              else "log only")
    print(f"-- recovered from {source}:"
          f" {info['transactions_replayed']} transaction(s),"
          f" {info['statements_replayed']} statement(s) replayed,"
          f" {info['records_skipped']} stale record(s) skipped,"
          f" {info['torn_bytes_discarded']} torn byte(s) discarded"
          f" in {info['seconds'] * 1000.0:.1f} ms")
    for index, shard in enumerate(info.get("shards") or []):
        if shard is None:
            continue
        print(f"--   shard {index}:"
              f" {shard['transactions_replayed']} transaction(s),"
              f" {shard['statements_replayed']} statement(s),"
              f" {shard['torn_bytes_discarded']} torn byte(s)")


def cmd_db_checkpoint(args) -> int:
    db = _open_durable(args)
    if db is None:
        return 1
    _describe_recovery(db)
    info = db.checkpoint()
    if "shards" in info:
        for index, shard in enumerate(info["shards"]):
            print(f"-- shard {index}: checkpoint written to"
                  f" {shard['path']}: {shard['bytes']} byte(s),"
                  f" {shard['tables']} table(s), commit sequence"
                  f" {shard['commit_seq']}")
        print(f"-- {len(info['shards'])} shard(s) checkpointed,"
              f" {info['bytes']} byte(s) total; WALs truncated")
    else:
        print(f"-- checkpoint written to {info['path']}:"
              f" {info['bytes']} byte(s), {info['tables']} table(s),"
              f" commit sequence {info['commit_seq']}; WAL truncated")
    db.close()
    return 0


def cmd_db_recover(args) -> int:
    db = _open_durable(args)
    if db is None:
        return 1
    _describe_recovery(db)
    print(f"-- {len(db.catalog.tables)} table(s),"
          f" {len(db.catalog.types)} type(s),"
          f" {len(db.catalog.views)} view(s)")
    status = 0
    if args.verify:
        problems = (db.verify() if isinstance(db, ShardedDatabase)
                    else verify_integrity(db))
        if problems:
            for problem in problems:
                print(f"integrity: {problem}", file=sys.stderr)
            status = 1
        else:
            scope = (f"all {db.n_shards} shard(s)"
                     if isinstance(db, ShardedDatabase)
                     else "the database")
            print(f"-- integrity verified across {scope}: indexes"
                  " consistent, all REFs resolve")
    db.close()
    return status


def cmd_db_rebalance(args) -> int:
    db = _open_durable(args)
    if db is None:
        return 1
    if not isinstance(db, ShardedDatabase):
        print(f"error: {args.db_path} is a single-engine store;"
              " rebalance needs a sharded one (ingest with"
              " --shards N first)", file=sys.stderr)
        db.close()
        return 1
    before = db.n_shards
    info = db.rebalance(args.shards)
    print(f"-- rebalanced {before} -> {info['n_shards']} shard(s)"
          f" (generation {info['generation']}):"
          f" {info['entries_replayed']} journal record(s) replayed")
    problems = db.verify()
    for problem in problems:
        print(f"integrity: {problem}", file=sys.stderr)
    db.close()
    return 1 if problems else 0


def cmd_serve(args) -> int:
    """Run the fault-tolerant network front end until SIGTERM."""
    from repro.server import DatabaseServer, ServerConfig

    db = _make_db(args)
    tool = XML2Oracle(db=db, mode=_mode(args.mode),
                      obs=_observability(args))
    config = ServerConfig(
        host=args.host, port=args.port,
        max_connections=args.max_connections,
        max_active=args.max_active, max_queue=args.max_queue,
        queue_timeout=args.queue_timeout,
        statement_timeout=args.statement_timeout,
        idle_timeout=args.idle_timeout,
        read_timeout=args.read_timeout,
        drain_timeout=args.drain_timeout,
        allow_remote_shutdown=args.allow_remote_shutdown)
    server = DatabaseServer(tool, config=config)
    server.start()
    host, port = server.address
    where = (f"durable at {args.db_path}" if args.db_path
             else "in-memory")
    if isinstance(db, ShardedDatabase):
        where += f", {db.n_shards} shard(s)"
    print(f"-- serving ordb://{host}:{port} ({where});"
          f" SIGTERM drains gracefully", file=sys.stderr)

    def drain(signum, frame):
        # off-thread: shutdown joins worker threads and must not run
        # inside the signal frame of the blocked main thread
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, drain)
    signal.signal(signal.SIGINT, drain)
    server.serve_forever()
    tool.db.close()
    snapshot = server.snapshot()
    print(f"-- drained: {snapshot['server']['requests']} request(s)"
          f" served, {snapshot['shed']} shed,"
          f" {snapshot['server']['statement_timeouts']} statement"
          f" timeout(s)", file=sys.stderr)
    return 0


def cmd_demo(args) -> int:
    from repro.workloads import SAMPLE_DOCUMENT

    document = parse_xml(SAMPLE_DOCUMENT)
    tool = XML2Oracle(mode=_mode(args.mode))
    schema = tool.register_schema(document.doctype.dtd)
    print("-- generated schema " + "-" * 40)
    print(schema.script.text)
    stored = tool.store(document, doc_name="appendix_a.xml")
    print(f"-- stored with {stored.load_result.insert_count}"
          f" INSERT statement(s)")
    result = tool.query(
        "/University/Student",
        predicate=("Course/Professor/PName", "=", "Jaeger"),
        select="LName")
    print("-- students of Professor Jaeger:",
          [row[0] for row in result.rows])
    print("-- reconstructed " + "-" * 43)
    print(tool.fetch_text(stored.doc_id, indent="  "))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XML2Oracle reproduction: map XML documents to an"
                    " embedded object-relational database.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def common(subparser, with_document: bool = True) -> None:
        subparser.add_argument(
            "--mode", choices=["oracle9", "oracle8"],
            default="oracle9",
            help="engine compatibility mode (Section 2.2)")
        subparser.add_argument(
            "--trace", action="store_true",
            help="print the span tree of the run to stderr")
        subparser.add_argument(
            "--slow-ms", type=float, metavar="MS",
            help="log statements slower than MS milliseconds")
        if with_document:
            subparser.add_argument("document",
                                   help="XML document file")
            subparser.add_argument(
                "--dtd", help="external DTD file (defaults to the"
                              " document's internal subset)")
            subparser.add_argument(
                "--root", help="root element (defaults to inference)")
            subparser.add_argument(
                "--clob", action="store_true",
                help="use CLOB for text leaves (Section 7)")
            subparser.add_argument(
                "--hint", action="append", metavar="NAME=SQLTYPE",
                help="type a leaf element/attribute, e.g."
                     " CreditPts=NUMBER (Section 7 extension;"
                     " repeatable)")

    schema_parser = subparsers.add_parser(
        "schema", help="generate the DDL script for a document's DTD")
    common(schema_parser)
    schema_parser.set_defaults(handler=cmd_schema)

    load_parser = subparsers.add_parser(
        "load", help="generate DDL + the INSERT script for a document")
    common(load_parser)
    load_parser.set_defaults(handler=cmd_load)

    query_parser = subparsers.add_parser(
        "query", help="store a document and run a path query")
    common(query_parser)
    query_parser.add_argument("path",
                              help="element path, e.g. /Uni/Student")
    query_parser.add_argument(
        "--predicate", help="relative filter, e.g."
                            " Course/Professor/PName=Jaeger")
    query_parser.add_argument(
        "--select", help="relative projection path, e.g. LName")
    query_parser.add_argument(
        "--explain", action="store_true",
        help="print the evaluation plan instead of running the query")
    query_parser.add_argument(
        "--url", metavar="ordb://HOST:PORT",
        help="store and query on a running 'repro serve' server"
             " instead of an embedded engine")
    query_parser.set_defaults(handler=cmd_query)

    roundtrip_parser = subparsers.add_parser(
        "roundtrip", help="store, fetch and report fidelity")
    common(roundtrip_parser)
    roundtrip_parser.add_argument(
        "--emit", action="store_true",
        help="also print the reconstructed document")
    roundtrip_parser.set_defaults(handler=cmd_roundtrip)

    def ingest_common(subparser) -> None:
        common(subparser, with_document=False)
        subparser.add_argument("documents", nargs="+",
                               help="XML document files")
        subparser.add_argument(
            "--dtd", help="external DTD file (defaults to the first"
                          " document's internal subset)")
        subparser.add_argument(
            "--root", help="root element (defaults to inference)")
        subparser.add_argument(
            "--continue-on-error", action="store_true",
            help="quarantine failing documents and keep going instead"
                 " of rolling back the whole batch")
        subparser.add_argument(
            "--retries", type=int, default=2, metavar="N",
            help="extra attempts for transient faults (default 2)")
        subparser.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="load with N parallel sessions (per-document"
                 " transactions; lock conflicts retry like any"
                 " transient fault; default: serial, one transaction)")
        subparser.add_argument(
            "--fault", metavar="SITE:INDEX",
            help="inject a fault at the INDEX-th boundary of SITE"
                 " (parse, statement, lock, storage, commit or wal;"
                 " testing aid)")
        subparser.add_argument(
            "--db-path", metavar="DIR",
            help="load into a durable database at DIR (write-ahead"
                 " logged; recovers any existing state first)")
        subparser.add_argument(
            "--fsync", choices=list(FSYNC_POLICIES),
            default="commit",
            help="WAL fsync policy for --db-path (default: commit)")
        subparser.add_argument(
            "--shards", type=int, metavar="N",
            help="hash-partition documents across N embedded engines"
                 " (each with its own WAL); an existing sharded"
                 " --db-path reopens with its manifest's count")
        subparser.add_argument(
            "--url", metavar="ordb://HOST:PORT",
            help="ingest into a running 'repro serve' server instead"
                 " of an embedded engine (per-document transactions;"
                 " transient failures retry with jittered backoff)")

    ingest_parser = subparsers.add_parser(
        "ingest",
        help="bulk-load documents in one transaction with"
             " per-document savepoints, retries and quarantine")
    ingest_common(ingest_parser)
    ingest_parser.set_defaults(handler=cmd_ingest)

    stats_parser = subparsers.add_parser(
        "stats",
        help="ingest documents with observability on and export the"
             " collected metrics (JSON by default)")
    ingest_common(stats_parser)
    stats_parser.add_argument(
        "--text", action="store_true",
        help="plain-text metrics instead of JSON")
    stats_parser.add_argument(
        "--output", "-o", metavar="FILE",
        help="write the JSON to FILE instead of stdout ('-' ="
             " stdout)")
    stats_parser.set_defaults(handler=cmd_stats)

    trace_parser = subparsers.add_parser(
        "trace",
        help="ingest documents with tracing on and print the span"
             " tree with per-phase latencies")
    ingest_common(trace_parser)
    trace_parser.set_defaults(handler=cmd_trace)

    db_parser = subparsers.add_parser(
        "db", help="manage a durable database directory")
    db_subparsers = db_parser.add_subparsers(dest="db_command",
                                             required=True)

    def db_common(subparser) -> None:
        subparser.add_argument(
            "--db-path", metavar="DIR", required=True,
            help="durable database directory (wal.log +"
                 " checkpoint.bin)")
        subparser.add_argument(
            "--mode", choices=["oracle9", "oracle8"],
            default="oracle9",
            help="engine compatibility mode (Section 2.2)")

    checkpoint_parser = db_subparsers.add_parser(
        "checkpoint",
        help="recover the database, snapshot it durably and truncate"
             " the write-ahead log")
    db_common(checkpoint_parser)
    checkpoint_parser.set_defaults(handler=cmd_db_checkpoint)

    recover_parser = db_subparsers.add_parser(
        "recover",
        help="recover the database from checkpoint + WAL and report"
             " what was replayed")
    db_common(recover_parser)
    recover_parser.add_argument(
        "--verify", action="store_true",
        help="also check index consistency and REF integrity; exit 1"
             " on any problem")
    recover_parser.set_defaults(handler=cmd_db_recover)

    rebalance_parser = db_subparsers.add_parser(
        "rebalance",
        help="change a sharded store's shard count by replaying the"
             " router journal onto a fresh generation of engines")
    db_common(rebalance_parser)
    rebalance_parser.add_argument(
        "--shards", type=int, required=True, metavar="N",
        help="new shard count")
    rebalance_parser.set_defaults(handler=cmd_db_rebalance)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the engine as a fault-tolerant TCP server"
             " (admission control, statement timeouts, graceful"
             " drain on SIGTERM)")
    common(serve_parser, with_document=False)
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=1521,
        help="TCP port (default 1521; 0 picks a free one)")
    serve_parser.add_argument(
        "--db-path", metavar="DIR",
        help="serve a durable database at DIR (write-ahead logged;"
             " recovers existing state first)")
    serve_parser.add_argument(
        "--fsync", choices=list(FSYNC_POLICIES), default="commit",
        help="WAL fsync policy for --db-path (default: commit)")
    serve_parser.add_argument(
        "--shards", type=int, metavar="N",
        help="serve a hash-sharded database of N embedded engines"
             " (see the ingest --shards option)")
    serve_parser.add_argument(
        "--max-connections", type=int, default=64, metavar="N",
        help="concurrent client connections (default 64)")
    serve_parser.add_argument(
        "--max-active", type=int, default=8, metavar="N",
        help="executor slots: statements running at once (default 8)")
    serve_parser.add_argument(
        "--max-queue", type=int, default=16, metavar="N",
        help="bounded admission queue; overflow is shed with"
             " transient ORA-00020 (default 16)")
    serve_parser.add_argument(
        "--queue-timeout", type=float, default=1.0, metavar="SECS",
        help="longest a request waits for a slot before being shed"
             " (default 1.0)")
    serve_parser.add_argument(
        "--statement-timeout", type=float, default=5.0,
        metavar="SECS",
        help="server-side budget per statement; overruns abort with"
             " ORA-01013 and roll the session back (default 5.0)")
    serve_parser.add_argument(
        "--idle-timeout", type=float, default=30.0, metavar="SECS",
        help="drop connections silent this long (default 30)")
    serve_parser.add_argument(
        "--read-timeout", type=float, default=5.0, metavar="SECS",
        help="drop connections stalling mid-frame this long"
             " (default 5)")
    serve_parser.add_argument(
        "--drain-timeout", type=float, default=5.0, metavar="SECS",
        help="grace period for in-flight statements on SIGTERM"
             " (default 5)")
    serve_parser.add_argument(
        "--allow-remote-shutdown", action="store_true",
        help="let clients drain the server with the 'shutdown'"
             " operation (tests and benchmarks)")
    serve_parser.set_defaults(handler=cmd_serve)

    demo_parser = subparsers.add_parser(
        "demo", help="run the Appendix A walkthrough")
    common(demo_parser, with_document=False)
    demo_parser.set_defaults(handler=cmd_demo)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:  # e.g. `repro schema doc.xml | head`
        sys.stderr.close()
        return 0
    except OrdbError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_TRANSIENT if is_transient(error) else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
