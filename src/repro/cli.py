"""Command-line interface: the XML2Oracle utility as a console tool.

The original XML2Oracle was an interactive GUI program (Section 3);
this CLI exposes the same pipeline as one-shot commands:

.. code-block:: console

   python -m repro schema  doc.xml            # emit the DDL script
   python -m repro load    doc.xml            # emit DDL + INSERTs
   python -m repro query   doc.xml /Uni/Name  # run a path query
   python -m repro roundtrip doc.xml          # fidelity report
   python -m repro ingest  a.xml b.xml c.xml  # transactional bulk load
   python -m repro demo                       # Appendix A walkthrough

Documents must carry their DTD in the internal subset (as the
Appendix A sample does) or supply one with ``--dtd file.dtd``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import RetryPolicy, XML2Oracle, compare
from repro.core.plan import MappingConfig
from repro.dtd import parse_dtd
from repro.ordb import CompatibilityMode
from repro.xmlkit import parse as parse_xml


def _mode(name: str) -> CompatibilityMode:
    return (CompatibilityMode.ORACLE8 if name == "oracle8"
            else CompatibilityMode.ORACLE9)


def _load_inputs(args) -> tuple:
    """Read the document and its DTD per the CLI conventions."""
    document = parse_xml(Path(args.document).read_text())
    if args.dtd:
        dtd = parse_dtd(Path(args.dtd).read_text())
    elif document.doctype is not None and document.doctype.dtd:
        dtd = document.doctype.dtd
    else:
        raise SystemExit(
            "error: the document has no internal DTD subset;"
            " pass --dtd FILE")
    return document, dtd


def _make_tool(args, document=None) -> XML2Oracle:
    config = MappingConfig()
    if getattr(args, "clob", False):
        config.use_clob_for_text = True
    for hint in getattr(args, "hint", None) or []:
        if "=" not in hint:
            raise SystemExit(
                f"error: --hint must be NAME=SQLTYPE, got {hint!r}")
        name, sql_type = hint.split("=", 1)
        config.type_hints[name] = sql_type
    tool = XML2Oracle(mode=_mode(args.mode), config=config)
    return tool


def cmd_schema(args) -> int:
    document, dtd = _load_inputs(args)
    tool = _make_tool(args)
    schema = tool.register_schema(dtd, root=args.root,
                                  sample_document=document)
    print(schema.script.text)
    for warning in schema.plan.warnings:
        print(f"-- warning: {warning}", file=sys.stderr)
    return 0


def cmd_load(args) -> int:
    document, dtd = _load_inputs(args)
    tool = _make_tool(args)
    tool.register_schema(dtd, root=args.root, sample_document=document)
    stored = tool.store(document, doc_name=Path(args.document).name)
    print(f"-- document stored as DocID {stored.doc_id} with"
          f" {stored.load_result.insert_count} INSERT and"
          f" {stored.load_result.update_count} UPDATE statement(s)")
    for statement in stored.load_result.statements:
        print(statement + ";")
    return 0


def cmd_query(args) -> int:
    document, dtd = _load_inputs(args)
    tool = _make_tool(args)
    tool.register_schema(dtd, root=args.root, sample_document=document)
    tool.store(document)
    predicate = None
    if args.predicate:
        if "=" not in args.predicate:
            raise SystemExit("error: --predicate must be path=value")
        path, value = args.predicate.split("=", 1)
        predicate = (path, "=", value)
    rendered = tool.path_query(args.path, predicate=predicate,
                               select=args.select)
    print(f"-- SQL: {rendered.sql}")
    result = tool.db.execute(rendered.sql)
    print(result.format_table())
    print(f"-- {len(result.rows)} row(s)")
    return 0


def cmd_roundtrip(args) -> int:
    document, dtd = _load_inputs(args)
    tool = _make_tool(args)
    tool.register_schema(dtd, root=args.root, sample_document=document)
    stored = tool.store(document, doc_name=Path(args.document).name)
    rebuilt = tool.fetch(stored.doc_id)
    report = compare(document, rebuilt)
    print(report.describe())
    if args.emit:
        print("-" * 60)
        print(tool.fetch_text(stored.doc_id, indent="  "))
    return 0 if report.score == 1.0 else 1


def cmd_ingest(args) -> int:
    paths = [Path(name) for name in args.documents]
    tool = _make_tool(args)
    # the sample document feeds IDREF-target inference (Section 4.4);
    # without one, IDREF attributes stay plain VARCHAR columns
    sample = None
    internal = None
    for path in paths:
        try:
            probe = parse_xml(path.read_text())
        except Exception:
            continue  # bad file: quarantined by store_many below
        if sample is None:
            sample = probe
        if probe.doctype is not None and probe.doctype.dtd:
            internal = probe
            break
    if args.dtd:
        dtd = parse_dtd(Path(args.dtd).read_text())
    elif internal is not None:
        dtd, sample = internal.doctype.dtd, internal
    else:
        raise SystemExit(
            "error: no readable document carries an internal DTD"
            " subset; pass --dtd FILE")
    tool.register_schema(dtd, root=args.root, sample_document=sample)
    if args.fault:
        site, _, position = args.fault.partition(":")
        if not position.isdigit():
            raise SystemExit(
                "error: --fault must be SITE:INDEX, e.g. storage:3")
        try:
            tool.db.faults.arm(site=site or None, at=int(position))
        except ValueError as error:
            raise SystemExit(f"error: {error}") from None
    try:
        texts = [path.read_text() for path in paths]
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    policy = RetryPolicy(max_attempts=max(1, args.retries + 1))
    try:
        report = tool.store_many(
            texts,
            continue_on_error=args.continue_on_error,
            retry=policy,
            doc_names=[path.name for path in paths])
    except Exception as error:
        print(f"error: batch aborted, all documents rolled back:"
              f" {error}", file=sys.stderr)
        print("hint: --continue-on-error quarantines bad documents"
              " instead", file=sys.stderr)
        return 1
    print(report.describe())
    return 0 if report.ok else 1


def cmd_demo(args) -> int:
    from repro.workloads import SAMPLE_DOCUMENT

    document = parse_xml(SAMPLE_DOCUMENT)
    tool = XML2Oracle(mode=_mode(args.mode))
    schema = tool.register_schema(document.doctype.dtd)
    print("-- generated schema " + "-" * 40)
    print(schema.script.text)
    stored = tool.store(document, doc_name="appendix_a.xml")
    print(f"-- stored with {stored.load_result.insert_count}"
          f" INSERT statement(s)")
    result = tool.query(
        "/University/Student",
        predicate=("Course/Professor/PName", "=", "Jaeger"),
        select="LName")
    print("-- students of Professor Jaeger:",
          [row[0] for row in result.rows])
    print("-- reconstructed " + "-" * 43)
    print(tool.fetch_text(stored.doc_id, indent="  "))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XML2Oracle reproduction: map XML documents to an"
                    " embedded object-relational database.")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def common(subparser, with_document: bool = True) -> None:
        subparser.add_argument(
            "--mode", choices=["oracle9", "oracle8"],
            default="oracle9",
            help="engine compatibility mode (Section 2.2)")
        if with_document:
            subparser.add_argument("document",
                                   help="XML document file")
            subparser.add_argument(
                "--dtd", help="external DTD file (defaults to the"
                              " document's internal subset)")
            subparser.add_argument(
                "--root", help="root element (defaults to inference)")
            subparser.add_argument(
                "--clob", action="store_true",
                help="use CLOB for text leaves (Section 7)")
            subparser.add_argument(
                "--hint", action="append", metavar="NAME=SQLTYPE",
                help="type a leaf element/attribute, e.g."
                     " CreditPts=NUMBER (Section 7 extension;"
                     " repeatable)")

    schema_parser = subparsers.add_parser(
        "schema", help="generate the DDL script for a document's DTD")
    common(schema_parser)
    schema_parser.set_defaults(handler=cmd_schema)

    load_parser = subparsers.add_parser(
        "load", help="generate DDL + the INSERT script for a document")
    common(load_parser)
    load_parser.set_defaults(handler=cmd_load)

    query_parser = subparsers.add_parser(
        "query", help="store a document and run a path query")
    common(query_parser)
    query_parser.add_argument("path",
                              help="element path, e.g. /Uni/Student")
    query_parser.add_argument(
        "--predicate", help="relative filter, e.g."
                            " Course/Professor/PName=Jaeger")
    query_parser.add_argument(
        "--select", help="relative projection path, e.g. LName")
    query_parser.set_defaults(handler=cmd_query)

    roundtrip_parser = subparsers.add_parser(
        "roundtrip", help="store, fetch and report fidelity")
    common(roundtrip_parser)
    roundtrip_parser.add_argument(
        "--emit", action="store_true",
        help="also print the reconstructed document")
    roundtrip_parser.set_defaults(handler=cmd_roundtrip)

    ingest_parser = subparsers.add_parser(
        "ingest",
        help="bulk-load documents in one transaction with"
             " per-document savepoints, retries and quarantine")
    common(ingest_parser, with_document=False)
    ingest_parser.add_argument("documents", nargs="+",
                               help="XML document files")
    ingest_parser.add_argument(
        "--dtd", help="external DTD file (defaults to the first"
                      " document's internal subset)")
    ingest_parser.add_argument(
        "--root", help="root element (defaults to inference)")
    ingest_parser.add_argument(
        "--continue-on-error", action="store_true",
        help="quarantine failing documents and keep going instead of"
             " rolling back the whole batch")
    ingest_parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="extra attempts for transient faults (default 2)")
    ingest_parser.add_argument(
        "--fault", metavar="SITE:INDEX",
        help="inject a fault at the INDEX-th boundary of SITE"
             " (parse, statement or storage; testing aid)")
    ingest_parser.set_defaults(handler=cmd_ingest)

    demo_parser = subparsers.add_parser(
        "demo", help="run the Appendix A walkthrough")
    common(demo_parser, with_document=False)
    demo_parser.set_defaults(handler=cmd_demo)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:  # e.g. `repro schema doc.xml | head`
        sys.stderr.close()
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
