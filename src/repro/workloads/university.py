"""The university document type of the paper (Appendix A / Fig. 4).

Provides the exact DTD and sample document the paper uses throughout
Sections 2–4, plus a seeded generator that scales the same structure
to arbitrary sizes for the benchmarks.
"""

from __future__ import annotations

import random

from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd
from repro.xmlkit.dom import Document
from repro.xmlkit.parser import parse

#: The DTD of Appendix A (CreditPts is optional, Subject repeats).
UNIVERSITY_DTD = """\
<!ELEMENT University (StudyCourse,Student*)>
<!ELEMENT Student (LName,FName,Course*)>
<!ATTLIST Student StudNr CDATA #REQUIRED>
<!ELEMENT Course (Name,Professor*,CreditPts?)>
<!ELEMENT Professor (PName,Subject+,Dept)>
<!ENTITY cs "Computer Science">
<!ELEMENT LName (#PCDATA)>
<!ELEMENT FName (#PCDATA)>
<!ELEMENT Name (#PCDATA)>
<!ELEMENT PName (#PCDATA)>
<!ELEMENT Subject (#PCDATA)>
<!ELEMENT Dept (#PCDATA)>
<!ELEMENT StudyCourse (#PCDATA)>
<!ELEMENT CreditPts (#PCDATA)>
"""

#: The sample document of Appendix A (Fig. 4), with the DTD inline.
SAMPLE_DOCUMENT = f"""\
<?xml version="1.0" encoding="UTF-8"?>
<!DOCTYPE University [
{UNIVERSITY_DTD}]>
<University>
  <StudyCourse>&cs;</StudyCourse>
  <Student StudNr="23374">
    <LName>Conrad</LName>
    <FName>Matthias</FName>
    <Course>
      <Name>Database Systems II</Name>
      <Professor>
        <PName>Kudrass</PName>
        <Subject>Database Systems</Subject>
        <Subject>Operat. Systems</Subject>
        <Dept>&cs;</Dept>
      </Professor>
      <CreditPts>4</CreditPts>
    </Course>
    <Course>
      <Name>CAD Intro</Name>
      <Professor>
        <PName>Jaeger</PName>
        <Subject>CAD</Subject>
        <Subject>CAE</Subject>
        <Dept>&cs;</Dept>
      </Professor>
      <CreditPts>4</CreditPts>
    </Course>
  </Student>
  <Student StudNr="00011">
    <LName>Meier</LName>
    <FName>Ralf</FName>
  </Student>
</University>
"""

_LAST_NAMES = ("Conrad", "Meier", "Schulz", "Lehmann", "Fischer",
               "Wagner", "Becker", "Hoffmann", "Koch", "Richter")
_FIRST_NAMES = ("Matthias", "Ralf", "Anna", "Jonas", "Lena", "Paul",
                "Marie", "Felix", "Clara", "David")
_COURSES = ("Database Systems II", "CAD Intro", "Operating Systems",
            "Compiler Construction", "Computer Graphics",
            "Distributed Systems", "Information Retrieval",
            "Software Engineering")
_PROFESSORS = ("Kudrass", "Jaeger", "Weicker", "Hartmann", "Vogel")
_SUBJECTS = ("Database Systems", "Operat. Systems", "CAD", "CAE",
             "Algorithms", "Networks", "Theory")
_DEPARTMENTS = ("Computer Science", "Mathematics",
                "Electrical Engineering")


def university_dtd() -> DTD:
    """The parsed Appendix A DTD."""
    return parse_dtd(UNIVERSITY_DTD)


def sample_document() -> Document:
    """The parsed Appendix A document (with DTD attached)."""
    return parse(SAMPLE_DOCUMENT)


def make_university_xml(students: int = 10,
                        courses_per_student: int = 3,
                        professors_per_course: int = 1,
                        subjects_per_professor: int = 2,
                        seed: int = 2002) -> str:
    """A seeded, valid university document of the given shape."""
    rng = random.Random(seed)
    lines = ["<University>",
             "  <StudyCourse>Computer Science</StudyCourse>"]
    for index in range(students):
        lines.append(f'  <Student StudNr="{10000 + index}">')
        lines.append(f"    <LName>{rng.choice(_LAST_NAMES)}</LName>")
        lines.append(f"    <FName>{rng.choice(_FIRST_NAMES)}</FName>")
        for _course in range(courses_per_student):
            lines.append("    <Course>")
            lines.append(f"      <Name>{rng.choice(_COURSES)}</Name>")
            for _prof in range(professors_per_course):
                lines.append("      <Professor>")
                lines.append(
                    f"        <PName>{rng.choice(_PROFESSORS)}</PName>")
                for _subject in range(max(1, subjects_per_professor)):
                    lines.append(
                        f"        <Subject>{rng.choice(_SUBJECTS)}"
                        f"</Subject>")
                lines.append(
                    f"        <Dept>{rng.choice(_DEPARTMENTS)}</Dept>")
                lines.append("      </Professor>")
            if rng.random() < 0.7:
                lines.append(
                    f"      <CreditPts>{rng.randint(2, 8)}</CreditPts>")
            lines.append("    </Course>")
        lines.append("  </Student>")
    lines.append("</University>")
    return "\n".join(lines)


def make_university(students: int = 10, courses_per_student: int = 3,
                    professors_per_course: int = 1,
                    subjects_per_professor: int = 2,
                    seed: int = 2002) -> Document:
    """Parsed version of :func:`make_university_xml`."""
    return parse(make_university_xml(
        students, courses_per_student, professors_per_course,
        subjects_per_professor, seed))
