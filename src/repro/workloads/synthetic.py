"""Seeded synthetic DTD and document generators.

Used by the parameter sweeps: documents of controlled depth, fanout,
optionality and set-valuedness, so the benchmarks can show *where* the
object-relational mapping's advantages grow (deep nesting) and where
its limits bite (wide repetition in Oracle 8 mode).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd
from repro.xmlkit.dom import Document
from repro.xmlkit.parser import parse

_WORDS = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta",
          "theta", "iota", "kappa", "lambda", "mu")


@dataclass(frozen=True)
class SyntheticShape:
    """Parameters of a generated document type."""

    depth: int = 3              # nesting levels below the root
    fanout: int = 3             # distinct child element types per level
    repeat_ratio: float = 0.4   # fraction of children declared '*'
    optional_ratio: float = 0.3  # fraction of children declared '?'
    attributes_per_element: int = 0
    seed: int = 42


def synthetic_dtd_text(shape: SyntheticShape) -> str:
    """A DTD with the requested shape; element names are L{level}E{i}."""
    rng = random.Random(shape.seed)
    lines: list[str] = []

    def declare(level: int, name: str) -> None:
        if level >= shape.depth:
            lines.append(f"<!ELEMENT {name} (#PCDATA)>")
            return
        children = []
        for index in range(shape.fanout):
            child = f"L{level + 1}E{index}"
            roll = rng.random()
            if roll < shape.repeat_ratio:
                children.append(child + "*")
            elif roll < shape.repeat_ratio + shape.optional_ratio:
                children.append(child + "?")
            else:
                children.append(child)
        lines.append(f"<!ELEMENT {name} ({','.join(children)})>")
        if shape.attributes_per_element:
            attrs = " ".join(
                f"a{index} CDATA #IMPLIED"
                for index in range(shape.attributes_per_element))
            lines.append(f"<!ATTLIST {name} {attrs}>")

    declare(0, "Root")
    for level in range(1, shape.depth + 1):
        for index in range(shape.fanout):
            declare(level, f"L{level}E{index}")
    return "\n".join(lines)


def synthetic_dtd(shape: SyntheticShape) -> DTD:
    return parse_dtd(synthetic_dtd_text(shape))


def synthetic_document_xml(shape: SyntheticShape,
                           repeat_count: int = 2,
                           seed: int | None = None) -> str:
    """A valid document for :func:`synthetic_dtd_text`'s DTD."""
    dtd = synthetic_dtd(shape)
    rng = random.Random(shape.seed if seed is None else seed)

    def emit(name: str, out: list[str]) -> None:
        declaration = dtd.element(name)
        if declaration is None or declaration.content.is_pcdata_only:
            out.append(f"<{name}>{rng.choice(_WORDS)}</{name}>")
            return
        out.append(f"<{name}>")
        for child in declaration.content.child_summary():
            count = 1
            if child.repeatable:
                count = repeat_count
            elif child.optional and rng.random() < 0.5:
                count = 0
            for _ in range(count):
                emit(child.name, out)
        out.append(f"</{name}>")

    out: list[str] = []
    emit("Root", out)
    return "".join(out)


def synthetic_document(shape: SyntheticShape, repeat_count: int = 2,
                       seed: int | None = None) -> Document:
    return parse(synthetic_document_xml(shape, repeat_count, seed))


def deep_chain_dtd(depth: int) -> str:
    """A linear chain DTD: N0 contains N1 contains ... (CLM2 sweep)."""
    lines = []
    for level in range(depth):
        lines.append(f"<!ELEMENT N{level} (N{level + 1})>")
    lines.append(f"<!ELEMENT N{depth} (#PCDATA)>")
    return "\n".join(lines)


def deep_chain_document_xml(depth: int, value: str = "leaf") -> str:
    """The single-path document matching :func:`deep_chain_dtd`."""
    opening = "".join(f"<N{level}>" for level in range(depth + 1))
    closing = "".join(f"</N{level}>" for level in range(depth, -1, -1))
    return f"{opening}{value}{closing}"


def wide_star_dtd(children: int) -> str:
    """A root with one repeated child list (CLM1 sweep)."""
    lines = ["<!ELEMENT Root (Item*)>",
             "<!ELEMENT Item (K,V)>",
             "<!ELEMENT K (#PCDATA)>",
             "<!ELEMENT V (#PCDATA)>"]
    del children  # shape is fixed; count is a document property
    return "\n".join(lines)


def wide_star_document_xml(items: int, seed: int = 7) -> str:
    rng = random.Random(seed)
    parts = ["<Root>"]
    for index in range(items):
        parts.append(f"<Item><K>k{index}</K>"
                     f"<V>{rng.choice(_WORDS)}</V></Item>")
    parts.append("</Root>")
    return "".join(parts)
