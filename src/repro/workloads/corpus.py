"""Canned documents exercising specific paper sections.

Each corpus entry is a (dtd_text, document_text) pair used by the
integration tests and the domain examples: recursive organizations
(Section 6.2), ID/IDREF bibliographies (Section 4.4), document-centric
articles with mixed content, comments, PIs and entities (Sections 1,
5, 6.1), and the Fig. 3 shared-element faculty.
"""

from __future__ import annotations

#: Section 6.2's recursive Professor/Dept structure, embedded in a
#: department tree ("a DTD can be designed in such a way that an
#: element can be part of any other element").
ORG_CHART_DTD = """\
<!ELEMENT Organization (Dept*)>
<!ELEMENT Dept (DName, Head?, Dept*)>
<!ELEMENT Head (PName, Subject*)>
<!ELEMENT DName (#PCDATA)>
<!ELEMENT PName (#PCDATA)>
<!ELEMENT Subject (#PCDATA)>
"""

ORG_CHART_DOCUMENT = """\
<Organization>
  <Dept>
    <DName>Computer Science</DName>
    <Head><PName>Kudrass</PName><Subject>Databases</Subject></Head>
    <Dept>
      <DName>Information Systems</DName>
      <Head><PName>Conrad</PName></Head>
    </Dept>
    <Dept>
      <DName>Graphics</DName>
      <Dept><DName>CAD Lab</DName></Dept>
    </Dept>
  </Dept>
  <Dept><DName>Mathematics</DName></Dept>
</Organization>
"""

#: Section 4.4: ID/IDREF. Citations cross-reference articles.
BIBLIOGRAPHY_DTD = """\
<!ELEMENT Bibliography (Article+)>
<!ELEMENT Article (Title, Author+, Cites*)>
<!ATTLIST Article key ID #REQUIRED year CDATA #IMPLIED>
<!ELEMENT Title (#PCDATA)>
<!ELEMENT Author (#PCDATA)>
<!ELEMENT Cites EMPTY>
<!ATTLIST Cites ref IDREF #REQUIRED>
"""

BIBLIOGRAPHY_DOCUMENT = """\
<Bibliography>
  <Article key="FK99" year="1999">
    <Title>Storing and Querying XML Data using an RDBMS</Title>
    <Author>Florescu</Author><Author>Kossmann</Author>
  </Article>
  <Article key="Sha99" year="1999">
    <Title>Relational Databases for Querying XML Documents</Title>
    <Author>Shanmugasundaram</Author>
    <Cites ref="FK99"/>
  </Article>
  <Article key="KC02" year="2002">
    <Title>Management of XML Documents in Object-Relational
 Databases</Title>
    <Author>Kudrass</Author><Author>Conrad</Author>
    <Cites ref="FK99"/><Cites ref="Sha99"/>
  </Article>
</Bibliography>
"""

#: Document-centric content: mixed content, comments, PIs, CDATA and
#: entity references — everything Sections 1/5/6.1 worry about.
ARTICLE_DTD = """\
<!ELEMENT ArticleDoc (Meta, Body)>
<!ELEMENT Meta (DocTitle, Issue?)>
<!ELEMENT Body (Para+)>
<!ELEMENT Para (#PCDATA | Em | Code)*>
<!ELEMENT Em (#PCDATA)>
<!ELEMENT Code (#PCDATA)>
<!ELEMENT DocTitle (#PCDATA)>
<!ELEMENT Issue (#PCDATA)>
<!ENTITY corp "Leipzig University of Applied Science">
<!ENTITY db "object-relational database">
"""

ARTICLE_DOCUMENT = """\
<?xml version="1.0"?>
<!DOCTYPE ArticleDoc [
<!ELEMENT ArticleDoc (Meta, Body)>
<!ELEMENT Meta (DocTitle, Issue?)>
<!ELEMENT Body (Para+)>
<!ELEMENT Para (#PCDATA | Em | Code)*>
<!ELEMENT Em (#PCDATA)>
<!ELEMENT Code (#PCDATA)>
<!ELEMENT DocTitle (#PCDATA)>
<!ELEMENT Issue (#PCDATA)>
<!ENTITY corp "Leipzig University of Applied Science">
<!ENTITY db "object-relational database">
]>
<ArticleDoc>
  <!-- editorial note: verified against the CMS -->
  <?page-layout two-column?>
  <Meta>
    <DocTitle>Storing XML at &corp;</DocTitle>
    <Issue>2002-03</Issue>
  </Meta>
  <Body>
    <Para>Documents can be stored in an &db; without a native
 XML system.</Para>
    <Para>Mixed content is flattened by the mapping.</Para>
  </Body>
</ArticleDoc>
"""

#: Fig. 3: the Address element has two parents (Professor, Student).
SHARED_ELEMENT_DTD = """\
<!ELEMENT Faculty (Professor, Student)>
<!ELEMENT Professor (PName, Address, Student*)>
<!ELEMENT Address (Street, City)>
<!ELEMENT Student (Address, SName)>
<!ELEMENT PName (#PCDATA)>
<!ELEMENT SName (#PCDATA)>
<!ELEMENT Street (#PCDATA)>
<!ELEMENT City (#PCDATA)>
"""

SHARED_ELEMENT_DOCUMENT = """\
<Faculty>
  <Professor>
    <PName>Kudrass</PName>
    <Address><Street>Main St 1</Street><City>Leipzig</City></Address>
    <Student>
      <Address><Street>Elm St 2</Street><City>Leipzig</City></Address>
      <SName>Conrad</SName>
    </Student>
  </Professor>
  <Student>
    <Address><Street>Oak St 3</Street><City>Halle</City></Address>
    <SName>Meier</SName>
  </Student>
</Faculty>
"""

#: Section 4.3's optional Address with mandatory Street.
CHECK_CONSTRAINT_DTD = """\
<!ELEMENT CourseList (Course*)>
<!ELEMENT Course (Name, Address?)>
<!ELEMENT Address (Street, City?)>
<!ELEMENT Name (#PCDATA)>
<!ELEMENT Street (#PCDATA)>
<!ELEMENT City (#PCDATA)>
"""

CORPUS = {
    "org_chart": (ORG_CHART_DTD, ORG_CHART_DOCUMENT),
    "bibliography": (BIBLIOGRAPHY_DTD, BIBLIOGRAPHY_DOCUMENT),
    "article": (ARTICLE_DTD, ARTICLE_DOCUMENT),
    "shared_element": (SHARED_ELEMENT_DTD, SHARED_ELEMENT_DOCUMENT),
}
