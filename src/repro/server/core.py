"""The fault-tolerant network front end of the XML2Oracle engine.

:class:`DatabaseServer` turns the embedded engine into the
client/server deployment the paper assumes ("database systems ...
used by millions of users"): a threaded TCP server where every
connection owns one :class:`~repro.ordb.sessions.Session`, speaking
the CRC-framed protocol of :mod:`repro.server.wire`.

Robustness is the design center, not an afterthought:

* **statement timeouts** — every connection's session carries the
  configured ``statement_timeout``; a statement that exceeds it is
  aborted by the engine (ORA-01013) and the server rolls the whole
  session back before replying, so locks never outlive the budget;
* **admission control** — requests take an executor slot from a
  bounded :class:`~repro.server.admission.AdmissionController`;
  overload sheds with transient ORA-00020 within ``queue_timeout``
  instead of queuing unboundedly;
* **idle/read deadlines** — a connection silent for ``idle_timeout``
  (or stalling mid-frame past ``read_timeout``) is dropped;
* **disconnect hygiene** — when a client vanishes mid-transaction its
  session is rolled back and closed, releasing every lock it held;
* **graceful drain** — :meth:`shutdown` (wired to SIGTERM by ``repro
  serve``) stops accepting, lets in-flight statements finish inside a
  drain budget, cancels overdue lock waits, checkpoints a durable
  engine and exits; committed transactions are already in the WAL, so
  drain loses nothing;
* **fault injection** — the engine's ``net`` fault site fires after
  each request (``op="recv"``) and before each response
  (``op="send"``); errors carrying a ``net_effect`` physically damage
  the conversation (torn frame, dropped connection, long stall).
"""

from __future__ import annotations

import socket
import threading
import time

from ..core.xml2oracle import XML2Oracle
from ..ordb.errors import (
    ConnectionLost,
    OrdbError,
    ProtocolError,
    ServerShuttingDown,
    StatementTimeout,
)
from .admission import AdmissionController
from . import wire


class ServerConfig:
    """Knobs of one :class:`DatabaseServer` (defaults are sane for
    tests; production-ish deployments raise the limits)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 max_connections: int = 64,
                 max_active: int = 8, max_queue: int = 16,
                 queue_timeout: float = 1.0,
                 statement_timeout: float | None = 5.0,
                 idle_timeout: float = 30.0,
                 read_timeout: float = 5.0,
                 drain_timeout: float = 5.0,
                 allow_remote_shutdown: bool = False):
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.max_active = max_active
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        self.statement_timeout = statement_timeout
        self.idle_timeout = idle_timeout
        self.read_timeout = read_timeout
        self.drain_timeout = drain_timeout
        self.allow_remote_shutdown = allow_remote_shutdown


class _Connection:
    """Server-side bookkeeping for one client socket."""

    def __init__(self, sock: socket.socket, addr, session):
        self.sock = sock
        self.addr = addr
        self.session = session
        #: True while a request of this connection holds an executor
        #: slot — what the drain path waits on
        self.busy = False


class DatabaseServer:
    """Serves one engine (wrapped in an XML2Oracle facade) over TCP."""

    def __init__(self, tool: XML2Oracle | None = None, *,
                 db=None, config: ServerConfig | None = None):
        if tool is None:
            tool = XML2Oracle(db=db)
        elif db is not None and tool.db is not db:
            raise ValueError("pass either tool or db, not both")
        self.tool = tool
        self.db = tool.db
        self.config = config or ServerConfig()
        self.admission = AdmissionController(
            max_active=self.config.max_active,
            max_queue=self.config.max_queue,
            queue_timeout=self.config.queue_timeout)
        #: monotonically increasing counters, never reset
        self.stats = {"connections_accepted": 0,
                      "connections_rejected": 0,
                      "requests": 0, "errors": 0,
                      "statement_timeouts": 0, "disconnects": 0,
                      "net_faults": 0}
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: set[_Connection] = set()
        self._conn_lock = threading.Lock()
        self._schema_lock = threading.Lock()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._ops = {
            "ping": self._op_ping,
            "execute": self._op_execute,
            "register_schema": self._op_register_schema,
            "store": self._op_store,
            "query": self._op_query,
            "fetch": self._op_fetch,
            "stats": self._op_stats,
            "shutdown": self._op_shutdown,
        }

    # -- lifecycle ---------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound — port 0 resolves on start."""
        if self._listener is None:
            raise RuntimeError("server is not started")
        return self._listener.getsockname()[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"ordb://{host}:{port}"

    def start(self) -> "DatabaseServer":
        """Bind, listen and accept in a background thread."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(128)
        listener.settimeout(0.2)  # poll the drain flag
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="ordb-server-accept",
            daemon=True)
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """:meth:`start` (when needed) then block until shut down."""
        if self._listener is None:
            self.start()
        self._stopped.wait()

    def __enter__(self) -> "DatabaseServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def shutdown(self, drain: bool = True,
                 timeout: float | None = None) -> None:
        """Stop the server; with *drain*, gracefully.

        Graceful drain: stop accepting, answer further requests with
        transient ORA-01089, give in-flight statements up to the
        drain budget to finish, cancel overdue lock waits, close all
        connections (rolling their sessions back), checkpoint a
        durable engine.  Committed work is already in the WAL before
        any client saw an acknowledgement, so drain never loses a
        committed transaction.
        """
        if self._stopped.is_set():
            return
        self._draining.set()
        if drain:
            budget = (self.config.drain_timeout
                      if timeout is None else timeout)
            deadline = time.monotonic() + budget
            while (self._busy_connections()
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            # whatever is still running is stuck on a lock: unstick it
            for connection in self._busy_connections():
                self.db.locks.cancel(connection.session.sid)
            while (self._busy_connections()
                   and time.monotonic() < deadline + 1.0):
                time.sleep(0.01)
        if self._listener is not None:
            self._listener.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        # wake every handler blocked in recv; each rolls back and
        # closes its own session on the way out
        for connection in self._snapshot_connections():
            try:
                connection.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            connection.sock.close()
        limit = time.monotonic() + 5.0
        while self._snapshot_connections() and time.monotonic() < limit:
            time.sleep(0.01)
        # safety net for handlers that never ran their cleanup
        for connection in self._snapshot_connections():
            self._retire(connection)
        if self.db.path is not None:
            try:
                self.db.checkpoint()
            except OrdbError:
                pass  # open transactions etc.; the WAL has everything
        self._stopped.set()

    def _busy_connections(self) -> list[_Connection]:
        with self._conn_lock:
            return [c for c in self._connections if c.busy]

    def _snapshot_connections(self) -> list[_Connection]:
        with self._conn_lock:
            return list(self._connections)

    # -- accept / per-connection loop --------------------------------------------

    def _accept_loop(self) -> None:
        while not self._draining.is_set():
            try:
                sock, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed under us
            with self._conn_lock:
                crowded = (len(self._connections)
                           >= self.config.max_connections)
            if crowded:
                # a plain close reads as transient ConnectionLost on
                # the client, which retries after backoff — exactly
                # the degradation we want from a full house
                self.stats["connections_rejected"] += 1
                sock.close()
                continue
            self.stats["connections_accepted"] += 1
            thread = threading.Thread(
                target=self._serve_connection, args=(sock, addr),
                name=f"ordb-conn-{addr[1]}", daemon=True)
            thread.start()

    def _serve_connection(self, sock: socket.socket, addr) -> None:
        session = self.db.session(name=f"net-{addr[0]}:{addr[1]}")
        session.statement_timeout = self.config.statement_timeout
        connection = _Connection(sock, addr, session)
        with self._conn_lock:
            self._connections.add(connection)
        if self.db.obs.enabled:
            self.db.obs.metrics.gauge(
                "server.connections", unit="connections").set(
                    len(self._connections))
        try:
            sock.settimeout(self.config.read_timeout)
            wire.expect_magic(sock)
            wire.send_magic(sock)
            self._request_loop(connection)
        except (ConnectionLost, ProtocolError, OSError):
            pass  # disconnects and garbage both end the conversation
        finally:
            self._retire(connection)

    def _retire(self, connection: _Connection) -> None:
        with self._conn_lock:
            if connection not in self._connections:
                return
            self._connections.discard(connection)
        self.stats["disconnects"] += 1
        try:
            # rollback + close releases every lock the client's open
            # transaction held — a dead client must never block others
            connection.session.close()
        except OrdbError:
            pass
        connection.sock.close()
        if self.db.obs.enabled:
            self.db.obs.metrics.gauge(
                "server.connections", unit="connections").set(
                    len(self._connections))

    def _request_loop(self, connection: _Connection) -> None:
        sock = connection.sock
        while True:
            try:
                request = wire.decode_message(wire.recv_frame(
                    sock, header_timeout=self.config.idle_timeout,
                    payload_timeout=self.config.read_timeout))
            except socket.timeout:
                return  # idle or stalled past its deadline: drop it
            self.stats["requests"] += 1
            if not self._net_fault(connection, "recv"):
                return
            response = self._respond(connection, request)
            if not self._net_fault(connection, "send"):
                return
            try:
                wire.send_message(sock, response)
            except (OSError, socket.timeout):
                return

    def _net_fault(self, connection: _Connection, op: str) -> bool:
        """Fire the ``net`` site; apply any injected damage.

        Returns False when the connection must die now (drop/torn),
        True to continue the conversation.
        """
        try:
            self.db.faults.hit("net", op=op,
                               session=connection.session.name)
        except OrdbError as fault:
            # any armed error at this site damages the conversation;
            # only NetFault subclasses refine *how* (net_effect)
            self.stats["net_faults"] += 1
            effect = getattr(fault, "net_effect", None)
            if effect == "slow":
                time.sleep(getattr(fault, "delay", 0.2))
                return True
            if effect == "torn":
                frame = wire.encode_frame(
                    wire.encode_message({"ok": True, "torn": True}))
                try:
                    connection.sock.sendall(frame[:len(frame) // 2])
                except OSError:
                    pass
                return False
            return False  # "drop" and plain NetFault sever the link
        return True

    # -- request handling ---------------------------------------------------------

    def _respond(self, connection: _Connection, request: dict) -> dict:
        try:
            payload = self._handle(connection, request)
        except BaseException as error:  # every failure crosses the wire
            self.stats["errors"] += 1
            if isinstance(error, StatementTimeout):
                self.stats["statement_timeouts"] += 1
                if self.db.obs.enabled:
                    self.db.obs.metrics.counter(
                        "server.statement_timeouts",
                        unit="statements").inc()
            return {"ok": False, "error": wire.encode_error(error)}
        payload["ok"] = True
        return payload

    def _handle(self, connection: _Connection, request: dict) -> dict:
        op = request.get("op")
        handler = self._ops.get(op)
        if handler is None:
            raise ProtocolError(f"unknown operation {op!r}")
        if op in ("ping", "stats", "shutdown") \
                or self._is_txn_control(request):
            # control plane bypasses admission.  Transaction control
            # especially must: a COMMIT/ROLLBACK queued behind a
            # statement that is *waiting for this session's locks*
            # is a priority inversion — the slot holder blocks on a
            # lock only the queued rollback can free
            return handler(connection, request)
        if self._draining.is_set():
            raise ServerShuttingDown(
                "server is draining; retry against the restarted"
                " server")
        if self.db.obs.enabled:
            self.db.obs.metrics.counter("server.requests",
                                        unit="requests").inc()
        try:
            self.admission.acquire()
        except OrdbError:
            if self.db.obs.enabled:
                self.db.obs.metrics.counter("server.shed",
                                            unit="requests").inc()
            raise
        connection.busy = True
        try:
            return handler(connection, request)
        finally:
            connection.busy = False
            self.admission.release()

    @staticmethod
    def _is_txn_control(request: dict) -> bool:
        if request.get("op") != "execute":
            return False
        sql = request.get("sql")
        if not isinstance(sql, str):
            return False
        head = sql.lstrip().split(None, 1)
        return bool(head) and head[0].upper() in (
            "BEGIN", "COMMIT", "ROLLBACK", "SAVEPOINT", "SET")

    @staticmethod
    def _field(request: dict, name: str, kind: type = str):
        value = request.get(name)
        if not isinstance(value, kind):
            raise ProtocolError(
                f"operation {request.get('op')!r} needs a"
                f" {kind.__name__} field {name!r}")
        return value

    def _op_ping(self, connection, request: dict) -> dict:
        return {"pong": True}

    def _op_stats(self, connection, request: dict) -> dict:
        return {"stats": self.snapshot()}

    def _op_shutdown(self, connection, request: dict) -> dict:
        if not self.config.allow_remote_shutdown:
            raise ProtocolError(
                "remote shutdown is disabled on this server")
        threading.Thread(target=self.shutdown, daemon=True).start()
        return {"draining": True}

    def _op_execute(self, connection, request: dict) -> dict:
        sql = self._field(request, "sql")
        try:
            result = connection.session.execute(sql)
        except StatementTimeout:
            # the statement is dead; per the contract the whole
            # session rolls back too, so its locks are gone before
            # the client hears about the timeout
            connection.session.rollback()
            raise
        # clients see their isolation state on every round trip, so
        # SET TRANSACTION READ ONLY / SERIALIZABLE is observable
        # without a second request
        return {"result": wire.encode_result(result),
                "txn": connection.session.txn_status()}

    def _op_register_schema(self, connection, request: dict) -> dict:
        dtd = request.get("dtd")
        root = request.get("root")
        sample = None
        document = request.get("document")
        if isinstance(document, str):
            from ..xmlkit import parse as parse_xml

            sample = parse_xml(document)
            if dtd is None and sample.doctype is not None:
                dtd = sample.doctype.dtd
        if dtd is None:
            raise ProtocolError(
                "register_schema needs a 'dtd' string or a"
                " 'document' carrying an internal DTD subset")
        # repeated registrations (every `ingest --url` run sends one)
        # must reuse the installed schema, keyed by root element
        reuse_key = root
        if reuse_key is None and sample is not None:
            reuse_key = sample.root_element.tag
        with self._schema_lock:
            schema = self._schema_by_root(reuse_key)
            if schema is None:
                schema = self.tool.register_schema(
                    dtd, root=root, sample_document=sample)
        return {"root": schema.root_name,
                "schema_id": schema.schema_id,
                "statements": len(schema.script.statements)}

    def _schema_by_root(self, root: str | None):
        if root is None:
            return None
        for schema in self.tool.schemas:
            if schema.root_name.upper() == root.upper():
                return schema
        return None

    def _op_store(self, connection, request: dict) -> dict:
        text = self._field(request, "document")
        root = request.get("root")
        with self._schema_lock:
            schema = self._schema_by_root(root)
        stored = self.tool.store(
            text, schema=schema,
            doc_name=str(request.get("doc_name", "")),
            url=str(request.get("url", "")),
            session=connection.session)
        return {"doc_id": stored.doc_id,
                "root": stored.schema.root_name,
                "warnings": list(stored.warnings)}

    def _op_query(self, connection, request: dict) -> dict:
        path = request.get("path")
        if not isinstance(path, (str, list)):
            raise ProtocolError("operation 'query' needs a 'path'")
        predicate = request.get("predicate")
        if predicate is not None:
            predicate = tuple(predicate)
        rendered = self.tool.path_query(
            path, predicate=predicate, doc_id=request.get("doc_id"),
            select=request.get("select"))
        try:
            result = connection.session.execute(rendered.sql)
        except StatementTimeout:
            connection.session.rollback()
            raise
        return {"result": wire.encode_result(result),
                "sql": rendered.sql}

    def _op_fetch(self, connection, request: dict) -> dict:
        doc_id = self._field(request, "doc_id", int)
        return {"text": self.tool.fetch_text(doc_id)}

    # -- introspection ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Point-in-time server counters (wire-encodable)."""
        with self._conn_lock:
            connections = len(self._connections)
        return {"server": dict(self.stats),
                "admission": dict(self.admission.stats),
                "shed": self.admission.shed,
                "active": self.admission.active,
                "queued": self.admission.queued,
                "connections": connections,
                "draining": self._draining.is_set()}
