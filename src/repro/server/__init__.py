"""Network front end: the engine as a fault-tolerant TCP server.

>>> from repro.server import DatabaseServer, ServerConfig
>>> from repro.client import connect
>>> with DatabaseServer(config=ServerConfig(port=0)) as server:
...     with connect(server.url) as conn:
...         _ = conn.execute("CREATE TABLE T(a NUMBER)")
...         _ = conn.execute("INSERT INTO T VALUES(42)")
...         int(conn.execute("SELECT a FROM T").scalar())
42
"""

from .admission import AdmissionController
from .core import DatabaseServer, ServerConfig
from .wire import (
    MAGIC,
    MAX_FRAME,
    decode_error,
    decode_message,
    decode_result,
    encode_error,
    encode_frame,
    encode_message,
    encode_result,
    pack_value,
    recv_frame,
    recv_message,
    send_frame,
    send_message,
    unpack_value,
)

__all__ = [
    "AdmissionController",
    "DatabaseServer",
    "MAGIC",
    "MAX_FRAME",
    "ServerConfig",
    "decode_error",
    "decode_message",
    "decode_result",
    "encode_error",
    "encode_frame",
    "encode_message",
    "encode_result",
    "pack_value",
    "recv_frame",
    "recv_message",
    "send_frame",
    "send_message",
    "unpack_value",
]
