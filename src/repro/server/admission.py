"""Admission control: bounded concurrency with load shedding.

The server grants each request an *executor slot* before running it.
``max_active`` slots exist; a request arriving while all are busy
waits in a bounded queue of ``max_queue`` places for at most
``queue_timeout`` seconds.  Everything past those bounds is **shed**
immediately with :class:`~repro.ordb.errors.ServerBusy` (ORA-00020, a
transient error) — the whole point is that an overloaded server says
"busy, try later" within a predictable deadline instead of letting an
unbounded backlog push latency to infinity.

>>> control = AdmissionController(max_active=1, max_queue=0)
>>> with control.admit():
...     control.admit().__enter__()     # no slot, no queue: shed now
Traceback (most recent call last):
    ...
repro.ordb.errors.ServerBusy: ORA-00020: ...
"""

from __future__ import annotations

import contextlib
import threading
import time

from ..ordb.errors import ServerBusy


class AdmissionController:
    """Hands out executor slots; sheds what it cannot seat."""

    def __init__(self, max_active: int = 8, max_queue: int = 16,
                 queue_timeout: float = 1.0):
        if max_active < 1:
            raise ValueError("max_active must be at least 1")
        self.max_active = max_active
        self.max_queue = max(0, max_queue)
        self.queue_timeout = queue_timeout
        self._slot_freed = threading.Condition()
        self.active = 0
        self.queued = 0
        #: monotonically increasing counters, never reset
        self.stats = {"admitted": 0, "queued": 0, "shed_queue_full": 0,
                      "shed_timeout": 0, "queue_high_water": 0}

    def acquire(self) -> None:
        """Take a slot, waiting in the bounded queue if necessary.

        Raises :class:`ServerBusy` when the queue is full on arrival
        or the queue wait outlives ``queue_timeout`` — in both cases
        within ``queue_timeout`` of the call, never later.
        """
        with self._slot_freed:
            if self.active < self.max_active:
                self.active += 1
                self.stats["admitted"] += 1
                return
            if self.queued >= self.max_queue:
                self.stats["shed_queue_full"] += 1
                raise ServerBusy(
                    f"all {self.max_active} executor slots busy and"
                    f" the {self.max_queue}-place queue is full;"
                    f" request shed")
            self.queued += 1
            self.stats["queued"] += 1
            self.stats["queue_high_water"] = max(
                self.stats["queue_high_water"], self.queued)
            deadline = time.monotonic() + self.queue_timeout
            try:
                while self.active >= self.max_active:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self.stats["shed_timeout"] += 1
                        raise ServerBusy(
                            f"no executor slot freed within the"
                            f" {self.queue_timeout:.3f}s queue"
                            f" timeout; request shed")
                    self._slot_freed.wait(remaining)
            finally:
                self.queued -= 1
            self.active += 1
            self.stats["admitted"] += 1

    def release(self) -> None:
        with self._slot_freed:
            self.active -= 1
            self._slot_freed.notify()

    @contextlib.contextmanager
    def admit(self):
        """``with control.admit():`` — slot held for the block."""
        self.acquire()
        try:
            yield self
        finally:
            self.release()

    @property
    def shed(self) -> int:
        """Total requests shed (queue-full plus queue-timeout)."""
        return (self.stats["shed_queue_full"]
                + self.stats["shed_timeout"])
