"""Wire protocol of the network front end.

The conversation reuses the framing discipline of the write-ahead log
(:mod:`repro.ordb.wal`): after an 8-byte magic handshake in each
direction, both peers exchange length-prefixed, CRC-checksummed
frames carrying JSON messages::

    RNET0001 | len u32 | crc32(len || payload) u32 | payload | ...

The checksum covers the length prefix, exactly as on disk, so a
damaged frame header cannot silently re-frame the payload.  A frame
that fails its checksum is a :class:`~repro.ordb.errors.ProtocolError`
(the peer is speaking garbage — permanent); a frame that simply never
finishes arriving is a :class:`~repro.ordb.errors.ConnectionLost`
(the peer died — transient, retry elsewhere).

Messages are JSON objects.  Engine values that JSON cannot carry —
object instances, collections, REFs, DECIMALs, DATEs — travel as
``{"$": tag, ...}`` envelopes (see :func:`pack_value`), so a path
query's composite results survive the hop intact.  Errors travel as
``{type, code, message, transient}`` and are rebuilt on the client as
the *same* :class:`~repro.ordb.errors.OrdbError` subclass via
:func:`~repro.ordb.errors.error_types`, falling back to
:class:`~repro.ordb.errors.RemoteError` when the class is unknown —
either way the ``transient`` classification survives, which is what
drives the client's retry machinery.

>>> from repro.ordb.errors import LockTimeout
>>> err = decode_error(encode_error(LockTimeout("busy")))
>>> type(err).__name__, err.code, err.transient
('LockTimeout', 'ORA-30006', True)
"""

from __future__ import annotations

import datetime
import json
import socket
import struct
from decimal import Decimal

from ..ordb.errors import (
    ConnectionLost,
    OrdbError,
    ProtocolError,
    RemoteError,
    error_types,
    is_transient,
)
from ..ordb.results import Result
from ..ordb.values import CollectionValue, ObjectValue, RefValue
from ..ordb.wal import FRAME_OVERHEAD, _frame_crc

#: Connection magic; the trailing digits version the wire format.
MAGIC = b"RNET0001"

#: Upper bound on one frame's payload — a length prefix beyond this is
#: treated as protocol garbage, not an allocation request.
MAX_FRAME = 16 * 1024 * 1024

_LENGTH = struct.Struct("<I")


# -- framing ------------------------------------------------------------------------


def encode_frame(payload: bytes) -> bytes:
    """One framed message: ``len | crc | payload`` (WAL discipline)."""
    length_bytes = _LENGTH.pack(len(payload))
    crc = _frame_crc(length_bytes, payload)
    return length_bytes + _LENGTH.pack(crc) + payload


def recv_exact(sock: socket.socket, count: int,
               what: str = "frame") -> bytes:
    """Read exactly *count* bytes or raise :class:`ConnectionLost`."""
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionLost(
                f"peer closed the connection mid-{what}"
                f" ({count - remaining} of {count} bytes arrived)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(encode_frame(payload))


def recv_frame(sock: socket.socket,
               header_timeout: float | None = None,
               payload_timeout: float | None = None) -> bytes:
    """Read one frame; verify its checksum before trusting a byte.

    The optional timeouts give the two phases distinct deadlines —
    waiting for the *next* frame to start is idleness (a long, lazy
    deadline), waiting for a started frame to finish is a stall (a
    short one).  ``socket.timeout`` propagates to the caller.
    """
    if header_timeout is not None:
        sock.settimeout(header_timeout)
    header = recv_exact(sock, FRAME_OVERHEAD, what="frame header")
    if payload_timeout is not None:
        sock.settimeout(payload_timeout)
    length_bytes = header[:4]
    (length,) = _LENGTH.unpack(length_bytes)
    (crc,) = _LENGTH.unpack(header[4:])
    if length > MAX_FRAME:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME}-byte"
            f" limit (corrupt or hostile length prefix)")
    payload = recv_exact(sock, length, what="frame payload")
    if _frame_crc(length_bytes, payload) != crc:
        raise ProtocolError(
            f"frame checksum mismatch on a {length}-byte payload")
    return payload


def send_magic(sock: socket.socket) -> None:
    sock.sendall(MAGIC)


def expect_magic(sock: socket.socket) -> None:
    """Consume and verify the peer's 8-byte hello."""
    hello = recv_exact(sock, len(MAGIC), what="magic handshake")
    if hello != MAGIC:
        raise ProtocolError(
            f"bad connection magic {hello!r} (expected {MAGIC!r})")


# -- messages -----------------------------------------------------------------------


def send_message(sock: socket.socket, message: dict) -> None:
    send_frame(sock, encode_message(message))


def recv_message(sock: socket.socket) -> dict:
    return decode_message(recv_frame(sock))


def encode_message(message: dict) -> bytes:
    return json.dumps(pack_value(message),
                      separators=(",", ":")).encode("utf-8")


def decode_message(payload: bytes) -> dict:
    try:
        message = unpack_value(json.loads(payload.decode("utf-8")))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(
            f"frame payload is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"expected a JSON object, got {type(message).__name__}")
    return message


# -- value codec --------------------------------------------------------------------
#
# ``{"$": tag, ...}`` envelopes carry everything JSON cannot.  A plain
# dict whose keys include "$" is itself wrapped in a "map" envelope so
# user data can never be mistaken for an envelope.


def pack_value(value: object) -> object:
    """JSON-encodable form of any engine value (recursive)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, ObjectValue):
        return {"$": "obj", "type": value.type_name,
                "attrs": {key: pack_value(item)
                          for key, item in value.attributes().items()}}
    if isinstance(value, CollectionValue):
        return {"$": "coll", "type": value.type_name,
                "items": [pack_value(item) for item in value.items]}
    if isinstance(value, RefValue):
        return {"$": "ref", "oid": value.oid, "table": value.table,
                "type": value.type_name}
    if isinstance(value, Decimal):
        return {"$": "dec", "v": str(value)}
    if isinstance(value, datetime.datetime):
        return {"$": "dt", "v": value.isoformat()}
    if isinstance(value, datetime.date):
        return {"$": "date", "v": value.isoformat()}
    if isinstance(value, (list, tuple)):
        return [pack_value(item) for item in value]
    if isinstance(value, dict):
        packed = {str(key): pack_value(item)
                  for key, item in value.items()}
        if "$" in packed:
            return {"$": "map", "v": packed}
        return packed
    raise ProtocolError(
        f"cannot serialize {type(value).__name__} onto the wire")


def unpack_value(value: object) -> object:
    """Inverse of :func:`pack_value`."""
    if isinstance(value, list):
        return [unpack_value(item) for item in value]
    if not isinstance(value, dict):
        return value
    tag = value.get("$")
    if tag is None:
        return {key: unpack_value(item) for key, item in value.items()}
    if tag == "obj":
        return ObjectValue(value["type"],
                           {key: unpack_value(item)
                            for key, item in value["attrs"].items()})
    if tag == "coll":
        return CollectionValue(value["type"],
                               [unpack_value(item)
                                for item in value["items"]])
    if tag == "ref":
        return RefValue(value["oid"], value["table"], value["type"])
    if tag == "dec":
        return Decimal(value["v"])
    if tag == "dt":
        return datetime.datetime.fromisoformat(value["v"])
    if tag == "date":
        return datetime.date.fromisoformat(value["v"])
    if tag == "map":
        return {key: unpack_value(item)
                for key, item in value["v"].items()}
    raise ProtocolError(f"unknown wire value tag {tag!r}")


# -- result codec -------------------------------------------------------------------


def encode_result(result: Result) -> dict:
    return {"columns": list(result.columns),
            "rows": [[pack_value(value) for value in row]
                     for row in result.rows],
            "rowcount": result.rowcount,
            "message": result.message}


def decode_result(payload: dict) -> Result:
    rows = [tuple(unpack_value(value) for value in row)
            for row in payload.get("rows", [])]
    # Result derives rowcount from rows when given; pass None for a
    # row-less DML result so the wire rowcount survives
    return Result(columns=list(payload.get("columns", [])) or None,
                  rows=rows or None,
                  rowcount=int(payload.get("rowcount", 0)),
                  message=str(payload.get("message", "")))


# -- error codec --------------------------------------------------------------------


def encode_error(error: BaseException) -> dict:
    """The wire form of a server-side failure.

    Unexpected (non-engine) exceptions surface as ORA-00600 — the
    classic Oracle "internal error" — and are never transient.
    """
    if isinstance(error, OrdbError):
        return {"type": type(error).__name__, "code": error.code,
                "message": error.message,
                "transient": bool(is_transient(error))}
    return {"type": "RemoteError", "code": "ORA-00600",
            "message": f"internal error"
                       f" [{type(error).__name__}: {error}]",
            "transient": False}


def decode_error(payload: dict) -> OrdbError:
    """Rebuild the server's error, class identity included.

    Falls back to :class:`RemoteError` whenever the named class is
    unknown here or would misreport the wire's code/transient pair —
    the taxonomy on the wire always wins over local class defaults.
    """
    name = str(payload.get("type", "RemoteError"))
    code = str(payload.get("code", "ORA-00000"))
    message = str(payload.get("message", "remote error"))
    transient = bool(payload.get("transient", False))
    cls = error_types().get(name)
    if cls is not None and cls is not RemoteError:
        try:
            error = cls(message)
        except TypeError:
            error = None
        if (error is not None and error.code == code
                and is_transient(error) == transient):
            return error
    return RemoteError(message, code=code, transient=transient)
