"""DTD analysis: Fig. 2's case tree realized as a mapping plan.

The analyzer walks the element graph of the DTD and decides, per
element and per parent-child edge, the classification the paper's
algorithm branches on:

* simple vs complex element (Section 4.1),
* iteration — ``*``/``+`` — selecting collection or workaround
  storage (Section 4.2),
* optional vs mandatory — ``?``/``*``/#IMPLIED vs #REQUIRED —
  selecting nullability (Section 4.3),
* attributes and their ID/IDREF semantics (Section 4.4),
* recursion and sharing (Section 6.2).

The result is a :class:`~repro.core.plan.MappingPlan`; rendering it to
SQL is the generator's job.
"""

from __future__ import annotations

from repro.dtd.content import ChildOccurrence, ContentKind
from repro.dtd.model import DTD, AttributeType
from repro.ordb.schema import CompatibilityMode
from .naming import NameGenerator
from .plan import (
    AttrListPlan,
    AttributePlan,
    ChildLink,
    CollectionFlavor,
    ElementKind,
    ElementPlan,
    MappingConfig,
    MappingPlan,
    Storage,
)

class Analyzer:
    """Builds a :class:`MappingPlan` for one DTD."""

    def __init__(self, dtd: DTD, config: MappingConfig,
                 mode: CompatibilityMode,
                 names: NameGenerator,
                 idref_targets: dict[tuple[str, str], str] | None = None):
        self.dtd = dtd
        self.config = config
        self.mode = mode
        self.names = names
        self.idref_targets = idref_targets or {}
        self.plans: dict[str, ElementPlan] = {}
        self.warnings: list[str] = []
        self._has_idrefs = self._dtd_has_idrefs()

    # -- entry point ------------------------------------------------------------

    def analyze(self, root: str | None = None) -> MappingPlan:
        if root is None:
            candidates = self.dtd.root_candidates()
            if len(candidates) != 1:
                raise ValueError(
                    f"cannot infer a unique root element"
                    f" (candidates: {candidates}); pass root=")
            root = candidates[0]
        root_plan = self._visit(root, stack=())
        root_plan.is_table_stored = True
        self._promote_id_targets()
        self._promote_child_table_parents()
        self._assign_table_names()
        plan = MappingPlan(
            root=root_plan,
            elements=self.plans,
            config=self.config,
            schema_id=self.names.schema_id,
            warnings=self.warnings,
        )
        return plan

    # -- element classification (Fig. 2 upper half) ----------------------------------

    def _visit(self, name: str, stack: tuple[str, ...]) -> ElementPlan:
        existing = self.plans.get(name)
        if existing is not None:
            if name in stack:
                existing.recursive = True
                existing.is_table_stored = True
            else:
                existing.shared = True
            return existing
        plan = ElementPlan(name=name, kind=self._classify(name))
        self.plans[name] = plan
        self._plan_attributes(plan)
        if plan.kind is ElementKind.COMPLEX:
            declaration = self.dtd.element(name)
            for child in declaration.content.child_summary():
                child_plan = self._visit(child.name, stack + (name,))
                plan.links.append(self._link(plan, child_plan, child,
                                             is_backedge=child.name
                                             in stack + (name,)))
        elif plan.kind is ElementKind.MIXED:
            dropped = self.dtd.element(name).content.mixed_names
            if dropped:
                self.warnings.append(
                    f"mixed content of <{name}>: child elements"
                    f" {list(dropped)} are flattened into text"
                    f" (known transformation problem, Section 1)")
        self._finalize_element(plan)
        return plan

    def _classify(self, name: str) -> ElementKind:
        declaration = self.dtd.element(name)
        if declaration is None:
            self.warnings.append(
                f"element <{name}> referenced but not declared;"
                f" treated as simple")
            return ElementKind.SIMPLE
        content = declaration.content
        if content.is_pcdata_only:
            return ElementKind.SIMPLE
        if content.is_mixed:
            return ElementKind.MIXED
        if content.kind is ContentKind.EMPTY:
            return ElementKind.EMPTY
        if content.kind is ContentKind.ANY:
            return ElementKind.ANY
        return ElementKind.COMPLEX

    # -- attributes (Section 4.4) -----------------------------------------------------

    def _plan_attributes(self, plan: ElementPlan) -> None:
        declarations = self.dtd.attributes_of(plan.name)
        if not declarations:
            return
        attribute_plans = [
            AttributePlan(
                xml_name=attr_name,
                db_name=self.names.xml_attribute(attr_name),
                declaration=declaration,
                ref_target=self._idref_target(plan.name, attr_name,
                                              declaration),
            )
            for attr_name, declaration in declarations.items()
        ]
        if self.config.attribute_list_types:
            plan.attr_list = AttrListPlan(
                type_name=self.names.attrlist_type(plan.name),
                column=self.names.attribute_list(plan.name),
                attributes=attribute_plans,
            )
        else:
            plan.attributes = attribute_plans

    def _idref_target(self, element: str, attribute: str,
                      declaration) -> str | None:
        if not self.config.map_idrefs_to_refs:
            return None
        if declaration.attribute_type not in (AttributeType.IDREF,
                                              AttributeType.IDREFS):
            return None
        target = self.idref_targets.get((element, attribute))
        if target is None:
            self.warnings.append(
                f"IDREF attribute {element}@{attribute}: target element"
                f" type unknown (not derivable from the DTD,"
                f" Section 4.4); mapped as VARCHAR")
        return target

    def _dtd_has_idrefs(self) -> bool:
        for per_element in self.dtd.attributes.values():
            for declaration in per_element.values():
                if declaration.attribute_type in (AttributeType.IDREF,
                                                  AttributeType.IDREFS):
                    return True
        return False

    # -- storage decision (Fig. 2 lower half) ---------------------------------------------

    def _link(self, parent: ElementPlan, child: ElementPlan,
              occurrence: ChildOccurrence,
              is_backedge: bool) -> ChildLink:
        link = ChildLink(child=child, occurrence=occurrence,
                         storage=Storage.SCALAR_COLUMN)
        if is_backedge or child.recursive:
            # Section 6.2: break cycles with REF + forward declaration.
            child.is_table_stored = True
            child.recursive = True
            if occurrence.repeatable:
                link.storage = Storage.REF_COLLECTION
                link.collection_type = self.names.ref_collection_type(
                    child.name)
            else:
                link.storage = Storage.REF_COLUMN
            link.column = self.names.attribute(child.name)
            return link
        if self._is_scalar_leaf(child):
            if occurrence.repeatable:
                link.storage = Storage.SCALAR_COLLECTION
                link.collection_type = self._collection_name(child.name)
            else:
                link.storage = Storage.SCALAR_COLUMN
            link.column = self.names.attribute(child.name)
            return link
        # complex (or attributed/empty/mixed-with-type) child
        if occurrence.repeatable:
            if self.mode is CompatibilityMode.ORACLE8 \
                    and self._subtree_has_collection(child):
                # Section 4.2 workaround: individual object type +
                # object table, child holds REF back to the parent.
                link.storage = Storage.CHILD_TABLE
                child.is_table_stored = True
                link.column = None
            else:
                link.storage = Storage.OBJECT_COLLECTION
                link.collection_type = self._collection_name(child.name)
                link.column = self.names.attribute(child.name)
        else:
            link.storage = Storage.OBJECT_COLUMN
            link.column = self.names.attribute(child.name)
        return link

    def _is_scalar_leaf(self, child: ElementPlan) -> bool:
        """True when the child maps to a bare VARCHAR2 value."""
        has_attributes = bool(child.attributes or child.attr_list)
        if has_attributes or child.is_table_stored:
            return False
        return child.kind in (ElementKind.SIMPLE, ElementKind.MIXED,
                              ElementKind.EMPTY, ElementKind.ANY)

    def _collection_name(self, element_name: str) -> str:
        if self.config.collection_flavor is CollectionFlavor.VARRAY:
            return self.names.varray_type(element_name)
        return self.names.nested_table_type(element_name)

    def _subtree_has_collection(self, plan: ElementPlan,
                                seen: set[str] | None = None) -> bool:
        """Would *plan*'s object type transitively embed a collection?

        This is the Oracle-8 legality test of Section 2.2: if yes, the
        child cannot live inside a collection and the generator must
        fall back to the REF workaround.
        """
        if seen is None:
            seen = set()
        if plan.name in seen:
            return False
        seen.add(plan.name)
        for link in plan.links:
            if link.storage in (Storage.SCALAR_COLLECTION,
                                Storage.OBJECT_COLLECTION,
                                Storage.REF_COLLECTION):
                return True
            if link.storage is Storage.OBJECT_COLUMN \
                    and self._subtree_has_collection(link.child, seen):
                return True
        return False

    def _finalize_element(self, plan: ElementPlan) -> None:
        """Assign the element's own type/column names where needed."""
        needs_type = (
            plan.kind is ElementKind.COMPLEX
            or plan.attributes or plan.attr_list
            or plan.is_table_stored
        )
        if not needs_type:
            return
        plan.object_type = self.names.object_type(plan.name)
        if plan.kind in (ElementKind.SIMPLE, ElementKind.MIXED,
                         ElementKind.ANY):
            plan.text_column = self.names.attribute(plan.name)

    # -- post passes --------------------------------------------------------------------

    def _promote_id_targets(self) -> None:
        """Elements on either side of an IDREF become row objects.

        Targets (ID carriers) must live in object tables so REFs can
        point at them (Section 4.4).  Holders (IDREF carriers) are
        promoted too, so their REF column is a top-level table column
        that the loader can fill with a deferred UPDATE — the only way
        to support circular ID/IDREF structures.
        """
        if not (self.config.map_idrefs_to_refs and self._has_idrefs):
            return
        targets: set[str] = set()
        holders: set[str] = set()
        for plan in self.plans.values():
            for attribute in self._all_attribute_plans(plan):
                if attribute.ref_target is not None:
                    targets.add(attribute.ref_target)
                    holders.add(plan.name)
        for name in sorted(targets | holders):
            plan = self.plans.get(name)
            if plan is None:
                self.warnings.append(
                    f"IDREF target <{name}> is not part of this"
                    f" document type")
                continue
            if not plan.is_table_stored:
                plan.is_table_stored = True
                if plan.object_type is None:
                    plan.object_type = self.names.object_type(plan.name)
                self._convert_links_to(plan)

    @staticmethod
    def _all_attribute_plans(plan: ElementPlan):
        if plan.attr_list is not None:
            return plan.attr_list.attributes
        return plan.attributes

    def _convert_links_to(self, target: ElementPlan) -> None:
        """Rewrite inline links to *target* as REF links (it now lives
        in its own object table)."""
        for plan in self.plans.values():
            for link in plan.links:
                if link.child is not target:
                    continue
                if link.storage is Storage.OBJECT_COLUMN:
                    link.storage = Storage.REF_COLUMN
                elif link.storage is Storage.OBJECT_COLLECTION:
                    link.storage = Storage.REF_COLLECTION
                    link.collection_type = self.names.ref_collection_type(
                        target.name)
                elif link.storage in (Storage.SCALAR_COLUMN,
                                      Storage.SCALAR_COLLECTION):
                    # the child gained an object type after this link
                    # was made (it was seen as scalar first)
                    link.storage = (Storage.REF_COLLECTION
                                    if link.repeatable
                                    else Storage.REF_COLUMN)
                    if link.storage is Storage.REF_COLLECTION:
                        link.collection_type = (
                            self.names.ref_collection_type(target.name))

    def _promote_child_table_parents(self) -> None:
        """Fixpoint: a CHILD_TABLE child's parent must be a row object
        (its REF points at the parent), so the parent is promoted to
        table storage and inline links to it become REF links."""
        changed = True
        while changed:
            changed = False
            for plan in self.plans.values():
                needs_table = any(
                    link.storage is Storage.CHILD_TABLE
                    for link in plan.links)
                if needs_table and not plan.is_table_stored:
                    plan.is_table_stored = True
                    if plan.object_type is None:
                        plan.object_type = self.names.object_type(
                            plan.name)
                    self._convert_links_to(plan)
                    changed = True

    def _assign_table_names(self) -> None:
        for plan in self.plans.values():
            if not plan.is_table_stored:
                continue
            if plan.object_type is None:
                plan.object_type = self.names.object_type(plan.name)
            plan.table = self.names.table(plan.name)
            plan.id_column = self.names.id_column(plan.name)
        # Oracle-8 child tables carry a REF back to their (table-
        # stored) parent; allocate those columns now that promotion
        # has settled.
        for plan in self.plans.values():
            for link in plan.links:
                if link.storage is Storage.CHILD_TABLE:
                    link.column = self.names.parent_ref_column(plan.name)


def analyze(dtd: DTD, config: MappingConfig | None = None,
            mode: CompatibilityMode = CompatibilityMode.ORACLE9,
            names: NameGenerator | None = None,
            root: str | None = None,
            idref_targets: dict[tuple[str, str], str] | None = None
            ) -> MappingPlan:
    """Analyze *dtd* into a mapping plan (convenience wrapper)."""
    config = config or MappingConfig()
    names = names or NameGenerator()
    analyzer = Analyzer(dtd, config, mode, names, idref_targets)
    return analyzer.analyze(root)
