"""Round-trip fidelity measurement (the CLM3 experiment's metric).

The paper's Section 7 lists the information an XML-to-database mapping
loses: comments, processing instructions, entity references, prolog,
element order.  To compare mappings quantitatively we extract a
multiset of *facts* from a document tree — elements, attributes, text,
comments, PIs, entity references — and report, per category, how many
of the original facts survive a store/fetch cycle.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.xmlkit.dom import (
    CDATASection,
    Comment,
    Document,
    Element,
    EntityReference,
    Node,
    ProcessingInstruction,
    Text,
)

#: Fact categories, in reporting order.
CATEGORIES = ("elements", "attributes", "text", "comments", "pis",
              "entity_refs")


@dataclass
class FidelityReport:
    """Per-category preservation counts for one round trip."""

    total: dict[str, int] = field(default_factory=dict)
    preserved: dict[str, int] = field(default_factory=dict)
    order_preserved: bool = True

    @property
    def score(self) -> float:
        """Fraction of all original facts that survived (0..1)."""
        total = sum(self.total.values())
        if total == 0:
            return 1.0
        return sum(self.preserved.values()) / total

    def category_score(self, category: str) -> float:
        total = self.total.get(category, 0)
        if total == 0:
            return 1.0
        return self.preserved.get(category, 0) / total

    def describe(self) -> str:
        lines = [f"overall fidelity: {self.score:.3f}"
                 + ("" if self.order_preserved else " (order lost)")]
        for category in CATEGORIES:
            total = self.total.get(category, 0)
            if total:
                lines.append(
                    f"  {category}: {self.preserved.get(category, 0)}"
                    f"/{total}")
        return "\n".join(lines)


def _facts(node: Node, path: tuple[str, ...],
           counters: dict[str, Counter],
           order: list[str], normalize_space: bool) -> None:
    if isinstance(node, Element):
        child_path = path + (node.tag,)
        counters["elements"]["/".join(child_path)] += 1
        order.append("/".join(child_path))
        for name, attribute in node.attributes.items():
            counters["attributes"][
                ("/".join(child_path), name, attribute.value)] += 1
        for child in node.children:
            _facts(child, child_path, counters, order, normalize_space)
    elif isinstance(node, (Text, CDATASection)):
        data = node.data
        if normalize_space:
            data = " ".join(data.split())
        if data:
            counters["text"][("/".join(path), data)] += 1
    elif isinstance(node, Comment):
        counters["comments"][node.data] += 1
    elif isinstance(node, ProcessingInstruction):
        counters["pis"][(node.target, node.data)] += 1
    elif isinstance(node, EntityReference):
        counters["entity_refs"][node.name] += 1
        if node.expansion:
            data = node.expansion
            if normalize_space:
                data = " ".join(data.split())
            counters["text"][("/".join(path), data)] += 1


def extract_facts(tree: Document | Element, normalize_space: bool = True
                  ) -> tuple[dict[str, Counter], list[str]]:
    """Fact multisets and element-order trace of one tree."""
    counters: dict[str, Counter] = {
        category: Counter() for category in CATEGORIES}
    order: list[str] = []
    root = tree.root_element if isinstance(tree, Document) else tree
    _facts(root, (), counters, order, normalize_space)
    if isinstance(tree, Document):
        for node in tree.misc_nodes():
            _facts(node, (), counters, order, normalize_space)
    return counters, order


def compare(original: Document | Element,
            reconstructed: Document | Element,
            normalize_space: bool = True) -> FidelityReport:
    """Measure how much of *original* survives in *reconstructed*."""
    original_facts, original_order = extract_facts(original,
                                                   normalize_space)
    new_facts, new_order = extract_facts(reconstructed, normalize_space)
    report = FidelityReport()
    for category in CATEGORIES:
        total = sum(original_facts[category].values())
        preserved = sum(
            (original_facts[category] & new_facts[category]).values())
        report.total[category] = total
        report.preserved[category] = preserved
    report.order_preserved = original_order == new_order
    return report


def identical(original: Document | Element,
              reconstructed: Document | Element,
              normalize_space: bool = True) -> bool:
    """True when every fact survives and element order is intact."""
    report = compare(original, reconstructed, normalize_space)
    return report.score == 1.0 and report.order_preserved and all(
        report.total[c] == report.preserved[c] for c in CATEGORIES)
