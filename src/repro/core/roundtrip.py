"""Round-trip fidelity measurement (the CLM3 experiment's metric).

The paper's Section 7 lists the information an XML-to-database mapping
loses: comments, processing instructions, entity references, prolog,
element order.  To compare mappings quantitatively we extract a
multiset of *facts* from a document tree — elements, attributes, text,
comments, PIs, entity references — and report, per category, how many
of the original facts survive a store/fetch cycle.

Sibling order is part of the metric: the overall score combines fact
preservation with the longest common subsequence of the two trees'
element-order traces, so a mapping that keeps every fact but scrambles
document order can no longer report a perfect 1.0.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.xmlkit.dom import (
    CDATASection,
    Comment,
    Document,
    Element,
    EntityReference,
    Node,
    ProcessingInstruction,
    Text,
)

#: Fact categories, in reporting order.
CATEGORIES = ("elements", "attributes", "text", "comments", "pis",
              "entity_refs")


@dataclass
class FidelityReport:
    """Per-category preservation counts for one round trip."""

    total: dict[str, int] = field(default_factory=dict)
    preserved: dict[str, int] = field(default_factory=dict)
    order_preserved: bool = True
    #: element-order positions compared / matched (LCS of the traces)
    order_total: int = 0
    order_matched: int = 0

    @property
    def score(self) -> float:
        """Combined fidelity (0..1): facts *and* sibling order.

        ``(preserved facts + matched order positions) / (total facts
        + order positions)`` where the order contribution is the
        longest common subsequence of the two element-order traces.
        1.0 requires every fact to survive **and** the traces to be
        identical — scrambling sibling order now costs score.
        """
        denominator = sum(self.total.values()) + self.order_total
        if denominator == 0:
            return 1.0
        return (sum(self.preserved.values())
                + self.order_matched) / denominator

    @property
    def fact_score(self) -> float:
        """Fact preservation alone, ignoring order (0..1)."""
        total = sum(self.total.values())
        if total == 0:
            return 1.0
        return sum(self.preserved.values()) / total

    def category_score(self, category: str) -> float:
        total = self.total.get(category, 0)
        if total == 0:
            return 1.0
        return self.preserved.get(category, 0) / total

    def describe(self) -> str:
        lines = [f"overall fidelity: {self.score:.3f}"
                 + ("" if self.order_preserved else
                    f" (order {self.order_matched}"
                    f"/{self.order_total})")]
        for category in CATEGORIES:
            total = self.total.get(category, 0)
            if total:
                lines.append(
                    f"  {category}: {self.preserved.get(category, 0)}"
                    f"/{total}")
        return "\n".join(lines)


def _facts(node: Node, path: tuple[str, ...],
           counters: dict[str, Counter],
           order: list[str], normalize_space: bool) -> None:
    if isinstance(node, Element):
        child_path = path + (node.tag,)
        counters["elements"]["/".join(child_path)] += 1
        order.append("/".join(child_path))
        for name, attribute in node.attributes.items():
            counters["attributes"][
                ("/".join(child_path), name, attribute.value)] += 1
        for child in node.children:
            _facts(child, child_path, counters, order, normalize_space)
    elif isinstance(node, (Text, CDATASection)):
        data = node.data
        if normalize_space:
            data = " ".join(data.split())
        if data:
            counters["text"][("/".join(path), data)] += 1
    elif isinstance(node, Comment):
        counters["comments"][node.data] += 1
    elif isinstance(node, ProcessingInstruction):
        counters["pis"][(node.target, node.data)] += 1
    elif isinstance(node, EntityReference):
        counters["entity_refs"][node.name] += 1
        if node.expansion:
            data = node.expansion
            if normalize_space:
                data = " ".join(data.split())
            counters["text"][("/".join(path), data)] += 1


def extract_facts(tree: Document | Element, normalize_space: bool = True
                  ) -> tuple[dict[str, Counter], list[str]]:
    """Fact multisets and element-order trace of one tree."""
    counters: dict[str, Counter] = {
        category: Counter() for category in CATEGORIES}
    order: list[str] = []
    root = tree.root_element if isinstance(tree, Document) else tree
    _facts(root, (), counters, order, normalize_space)
    if isinstance(tree, Document):
        for node in tree.misc_nodes():
            _facts(node, (), counters, order, normalize_space)
    return counters, order


def _order_overlap(a: list[str], b: list[str]) -> int:
    """Longest common subsequence length of two order traces.

    Round trips are usually perfect or near-perfect, so the quadratic
    DP only runs on whatever remains after trimming the common prefix
    and suffix (identical traces never reach it at all).
    """
    if a == b:
        return len(a)
    lo = 0
    while lo < len(a) and lo < len(b) and a[lo] == b[lo]:
        lo += 1
    hi = 0
    while (hi < len(a) - lo and hi < len(b) - lo
           and a[len(a) - 1 - hi] == b[len(b) - 1 - hi]):
        hi += 1
    common = lo + hi
    middle_a = a[lo:len(a) - hi]
    middle_b = b[lo:len(b) - hi]
    if not middle_a or not middle_b:
        return common
    previous = [0] * (len(middle_b) + 1)
    for item in middle_a:
        current = [0]
        for j, other in enumerate(middle_b):
            current.append(previous[j] + 1 if item == other
                           else max(previous[j + 1], current[j]))
        previous = current
    return common + previous[-1]


def compare(original: Document | Element,
            reconstructed: Document | Element,
            normalize_space: bool = True) -> FidelityReport:
    """Measure how much of *original* survives in *reconstructed*."""
    original_facts, original_order = extract_facts(original,
                                                   normalize_space)
    new_facts, new_order = extract_facts(reconstructed, normalize_space)
    report = FidelityReport()
    for category in CATEGORIES:
        total = sum(original_facts[category].values())
        preserved = sum(
            (original_facts[category] & new_facts[category]).values())
        report.total[category] = total
        report.preserved[category] = preserved
    report.order_preserved = original_order == new_order
    report.order_total = max(len(original_order), len(new_order))
    report.order_matched = (
        report.order_total if report.order_preserved
        else _order_overlap(original_order, new_order))
    return report


def identical(original: Document | Element,
              reconstructed: Document | Element,
              normalize_space: bool = True) -> bool:
    """True when every fact survives and element order is intact.

    The combined score reaches 1.0 only under exactly those
    conditions (each preserved count is bounded by its total), so
    this is now a plain score check.
    """
    report = compare(original, reconstructed, normalize_space)
    return report.score == 1.0
