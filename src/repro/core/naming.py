"""Naming conventions of Table 1 and SchemaID management (Section 5).

Every identifier the generator emits goes through
:class:`NameGenerator`, which applies the paper's prefixes, avoids SQL
reserved words, respects the 30-character limit of the engine
(truncating and disambiguating), and keeps generated names unique
within one schema.  A ``SchemaID`` suffix distinguishes identical
element names coming from different document types stored in the same
database.
"""

from __future__ import annotations

from repro.ordb.identifiers import MAX_IDENTIFIER_LENGTH, is_reserved

#: The prefixes of Table 1 (plus two extensions needed by Sections 4.2
#: and 6.2: nested-table and REF-collection types).
PREFIX_TABLE = "Tab"
PREFIX_ATTRIBUTE = "attr"
PREFIX_ATTRIBUTE_LIST = "attrList"
PREFIX_ID = "ID"
PREFIX_OBJECT_TYPE = "Type_"
PREFIX_ATTRLIST_TYPE = "TypeAttrL_"
PREFIX_VARRAY_TYPE = "TypeVA_"
PREFIX_NESTED_TYPE = "TypeNT_"
PREFIX_REF_COLLECTION_TYPE = "TypeRef_"
PREFIX_OBJECT_VIEW = "OView_"


def clean_xml_name(name: str) -> str:
    """Strip characters an XML name may contain but SQL may not."""
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_"
                      for ch in name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = "X" + cleaned
    return cleaned


class NameGenerator:
    """Allocates unique, legal identifiers per Table 1.

    One generator instance covers one generated schema; names are
    deduplicated across all prefixes because types, tables and views
    share a namespace in the engine (as in Oracle).
    """

    def __init__(self, schema_id: str | None = None):
        self.schema_id = schema_id
        self._used: set[str] = set()
        #: remembers name decisions so repeated calls are stable
        self._assigned: dict[tuple[str, str], str] = {}

    # -- Table 1 conventions ------------------------------------------------------

    def table(self, element_name: str) -> str:
        """``TabElementname`` — name of a table."""
        return self._allocate(PREFIX_TABLE, element_name)

    def attribute(self, element_name: str) -> str:
        """``attrElementname`` — DB attribute from a simple element."""
        return self._allocate(PREFIX_ATTRIBUTE, element_name)

    def xml_attribute(self, attribute_name: str) -> str:
        """``attrAttributename`` — DB attribute from an XML attribute."""
        return self._allocate(PREFIX_ATTRIBUTE, attribute_name,
                              slot="xmlattr")

    def attribute_list(self, element_name: str) -> str:
        """``attrListElementname`` — column holding an attribute list."""
        return self._allocate(PREFIX_ATTRIBUTE_LIST, element_name)

    def id_column(self, element_name: str) -> str:
        """``IDElementname`` — primary/foreign key attribute."""
        return self._allocate(PREFIX_ID, element_name)

    def object_type(self, element_name: str) -> str:
        """``Type_Elementname`` — object type from an element."""
        return self._allocate(PREFIX_OBJECT_TYPE, element_name)

    def attrlist_type(self, element_name: str) -> str:
        """``TypeAttrL_Elementname`` — object type for an attribute list."""
        return self._allocate(PREFIX_ATTRLIST_TYPE, element_name)

    def varray_type(self, element_name: str) -> str:
        """``TypeVA_Elementname`` — array type."""
        return self._allocate(PREFIX_VARRAY_TYPE, element_name)

    def nested_table_type(self, element_name: str) -> str:
        """``TypeNT_Elementname`` — nested-table type (Section 4.2)."""
        return self._allocate(PREFIX_NESTED_TYPE, element_name)

    def ref_collection_type(self, element_name: str) -> str:
        """``TypeRef_Elementname`` — collection of REF (Section 6.2)."""
        return self._allocate(PREFIX_REF_COLLECTION_TYPE, element_name)

    def object_view(self, element_name: str) -> str:
        """``OView_Elementname`` — object view (Section 6.3)."""
        return self._allocate(PREFIX_OBJECT_VIEW, element_name)

    def storage_table(self, element_name: str) -> str:
        """Name for a NESTED TABLE ... STORE AS segment."""
        return self._allocate(PREFIX_TABLE, element_name + "_List",
                              slot="storage")

    def parent_ref_column(self, parent_name: str) -> str:
        """``refElementname`` — the child-to-parent REF column of the
        Oracle 8 workaround (Section 4.2; not covered by Table 1)."""
        return self._allocate("ref", parent_name, slot="parentref")

    # -- allocation machinery --------------------------------------------------------

    def _allocate(self, prefix: str, raw_name: str,
                  slot: str = "") -> str:
        memo_key = (prefix + "\x00" + slot, raw_name)
        existing = self._assigned.get(memo_key)
        if existing is not None:
            return existing
        name = self._make_unique(prefix, clean_xml_name(raw_name))
        self._assigned[memo_key] = name
        return name

    def _make_unique(self, prefix: str, cleaned: str) -> str:
        suffix = f"_{self.schema_id}" if self.schema_id else ""
        budget = MAX_IDENTIFIER_LENGTH - len(prefix) - len(suffix)
        candidate = prefix + cleaned[:budget] + suffix
        if is_reserved(candidate):
            candidate = (prefix + cleaned[:budget - 1] + "_" + suffix)
        if candidate.upper() not in self._used:
            self._used.add(candidate.upper())
            return candidate
        counter = 2
        while True:
            tail = str(counter)
            trimmed = cleaned[:budget - len(tail)]
            candidate = prefix + trimmed + tail + suffix
            if candidate.upper() not in self._used:
                self._used.add(candidate.upper())
                return candidate
            counter += 1


class SchemaIdAllocator:
    """Hands out short SchemaIDs ('S1', 'S2', ...) per document type.

    The paper introduces SchemaIDs "to deal with identical element
    names from different DTDs"; the allocator is owned by the facade
    so each registered DTD gets its own suffix space.
    """

    def __init__(self) -> None:
        self._next = 0

    def allocate(self) -> str:
        self._next += 1
        return f"S{self._next}"

    def release(self, schema_id: str) -> bool:
        """Hand back the most recent ID when its registration failed,
        so a rolled-back ``register_schema`` does not burn it.  Only
        the latest allocation can be released (IDs are a sequence)."""
        if schema_id == f"S{self._next}" and self._next > 0:
            self._next -= 1
            return True
        return False
