"""The XML2Oracle facade: the utility program of Section 3 as a library.

Wires the whole pipeline of Fig. 1 together: the XML parser and the
DTD parser feed the analyzer, the generator emits the schema script,
the loader stores documents, the meta-table keeps Section 5's
bookkeeping, and the retriever reverses the trip.

>>> from repro.core import XML2Oracle
>>> tool = XML2Oracle()
>>> schema = tool.register_schema('''
...   <!ELEMENT Uni (Name, Student*)> <!ELEMENT Name (#PCDATA)>
...   <!ELEMENT Student (#PCDATA)>''')
>>> doc = tool.store('<Uni><Name>HTWK</Name><Student>A</Student>'
...                  '<Student>B</Student></Uni>')
>>> doc.load_result.insert_count  # single INSERT (Section 4.2)
1
>>> tool.query("/Uni/Student").column("COLUMN_VALUE")
['A', 'B']
"""

from __future__ import annotations

import contextlib
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.dtd.model import DTD, AttributeType
from repro.dtd.parser import parse_dtd
from repro.dtd.validator import Validator
from repro.obs import Observability
from repro.ordb.engine import Database
from repro.ordb.results import Result
from repro.ordb.schema import CompatibilityMode
from repro.ordb.sessions import Session
from repro.xmlkit.dom import Document, Element
from repro.xmlkit.errors import XMLValidityError
from repro.xmlkit.parser import parse as parse_xml
from repro.xmlkit.serializer import Serializer
from .analyzer import Analyzer
from .generator import SchemaScript, generate_schema
from .ingest import DocumentOutcome, IngestReport, RetryPolicy, classify, error_code
from .loader import DocumentLoader, LoadResult
from .metadata import MetadataRegistry
from .naming import NameGenerator, SchemaIdAllocator
from .plan import MappingConfig, MappingPlan
from .queries import PathQuery, PathQueryBuilder
from .retriever import Retriever


@dataclass
class RegisteredSchema:
    """One document type installed in the database."""

    dtd: DTD
    plan: MappingPlan
    script: SchemaScript
    schema_id: str
    validator: Validator

    @property
    def root_name(self) -> str:
        return self.plan.root.name


@dataclass
class StoredDocument:
    """Handle for one stored document."""

    doc_id: int
    schema: RegisteredSchema
    load_result: LoadResult
    misc_count: int = 0
    warnings: list[str] = field(default_factory=list)


def infer_idref_targets(document: Document | Element,
                        dtd: DTD) -> dict[tuple[str, str], str]:
    """Determine IDREF target element types from a sample document.

    Section 4.4: "This kind of information cannot be captured from the
    DTD, rather from the XML document."  We scan the document: the
    element type owning each ID value becomes the target of every
    IDREF attribute that mentions the value.
    """
    root = (document.root_element if isinstance(document, Document)
            else document)
    id_owner: dict[str, str] = {}
    idref_sites: list[tuple[str, str, str]] = []
    for element in root.iter_elements():
        declarations = dtd.attributes_of(element.tag)
        for name, declaration in declarations.items():
            value = element.get(name)
            if value is None:
                continue
            if declaration.attribute_type is AttributeType.ID:
                id_owner[value] = element.tag
            elif declaration.attribute_type is AttributeType.IDREF:
                idref_sites.append((element.tag, name, value))
    targets: dict[tuple[str, str], str] = {}
    for element_tag, attribute, value in idref_sites:
        owner = id_owner.get(value)
        if owner is not None:
            targets.setdefault((element_tag, attribute), owner)
    return targets


class XML2Oracle:
    """Programmatic interface of the XML2Oracle storage system."""

    def __init__(self, db: Database | None = None,
                 mode: CompatibilityMode = CompatibilityMode.ORACLE9,
                 config: MappingConfig | None = None,
                 metadata: bool = True,
                 validate_documents: bool = True,
                 transactional: bool = True,
                 obs: Observability | None = None):
        self.db = db or Database(mode)
        if obs is not None:
            # one shared Observability: facade phases and engine
            # statements land in the same registry and span tree
            self.db.obs = obs
        self.obs = self.db.obs
        self.config = config or MappingConfig()
        self.validate_documents = validate_documents
        #: when False, store()/register_schema() run unguarded as the
        #: original tool did — kept for overhead benchmarking only
        self.transactional = transactional
        self.metadata: MetadataRegistry | None = (
            MetadataRegistry(self.db) if metadata else None)
        self.schemas: list[RegisteredSchema] = []
        self.documents: dict[int, StoredDocument] = {}
        self._schema_ids = SchemaIdAllocator()
        self._next_doc_id = 0
        # parallel ingest workers share the facade: doc-id allocation
        # and the documents dict mutate under this lock
        self._facade_lock = threading.Lock()

    def _atomic(self, session: Session | None = None):
        """The engine's all-or-nothing scope — on *session* when one
        is given — or a no-op guard when the facade was built with
        ``transactional=False``."""
        target = session if session is not None else self.db
        if self.transactional:
            return target.atomic()
        return contextlib.nullcontext(target)

    def _pin(self, doc_id: int):
        """Route statements to *doc_id*'s home shard while open.

        A sharded database (:class:`~repro.ordb.sharding.
        ShardedDatabase`) exposes ``pin_document``; pinning keeps one
        document's rows, meta-entries and reads together on one
        shard.  A single-engine database has no pin — no-op."""
        pin = getattr(self.db, "pin_document", None)
        if pin is None:
            return contextlib.nullcontext()
        return pin(doc_id)

    @property
    def mode(self) -> CompatibilityMode:
        return self.db.mode

    # -- schema registration --------------------------------------------------------

    def register_schema(self, dtd: DTD | str, root: str | None = None,
                        idref_targets: dict[tuple[str, str], str]
                        | None = None,
                        sample_document: Document | Element | str
                        | None = None) -> RegisteredSchema:
        """Analyze a DTD, generate its schema and execute the script.

        ``sample_document`` lets the tool infer IDREF targets the way
        Section 4.4 prescribes (from a document, not the DTD).

        Registration is atomic: when a statement of the generated
        script fails partway, every CREATE already executed is rolled
        back and the allocated SchemaID is returned to the allocator.
        """
        if isinstance(dtd, str):
            dtd = parse_dtd(dtd)
        if idref_targets is None and sample_document is not None:
            if isinstance(sample_document, str):
                sample_document = parse_xml(sample_document)
            idref_targets = infer_idref_targets(sample_document, dtd)
        schema_id = self._schema_ids.allocate()
        try:
            names = NameGenerator(schema_id if self.schemas else None)
            with self.obs.phase("analyze"):
                analyzer = Analyzer(dtd, self.config, self.mode, names,
                                    idref_targets)
                plan = analyzer.analyze(root)
            # the plan's schema_id mirrors the facade's allocation even
            # for the first schema, whose generated names carry no suffix
            plan.schema_id = schema_id
            with self.obs.phase("generate_ddl"):
                script = generate_schema(plan)
            with self.obs.phase("execute_ddl",
                                statements=len(script.statements)):
                with self._atomic():
                    for statement in script.statements:
                        self.db.execute(statement)
                    if self.metadata is not None:
                        self.metadata.register_entities(
                            schema_id, dtd.entities.internal_general())
        except BaseException:
            self._schema_ids.release(schema_id)
            raise
        schema = RegisteredSchema(
            dtd=dtd, plan=plan, script=script, schema_id=schema_id,
            validator=Validator(dtd))
        self.schemas.append(schema)
        return schema

    def schema_script(self, schema: RegisteredSchema | None = None) -> str:
        """The generated DDL of a registered schema."""
        schema = schema or self._default_schema()
        return schema.script.text

    def _default_schema(self) -> RegisteredSchema:
        if not self.schemas:
            raise LookupError("no schema registered yet")
        return self.schemas[-1]

    def _schema_for_root(self, root_name: str) -> RegisteredSchema:
        for schema in reversed(self.schemas):
            if schema.root_name == root_name:
                return schema
        raise LookupError(
            f"no registered schema has root element <{root_name}>")

    # -- storing documents -------------------------------------------------------------

    def store(self, document: Document | Element | str,
              schema: RegisteredSchema | None = None,
              doc_name: str = "", url: str = "",
              session: Session | None = None) -> StoredDocument:
        """Validate, map and load one document; returns its handle.

        The load is atomic: document rows, deferred IDREF updates and
        meta-table entries commit together or — on any failure — roll
        back together, and the document-id counter is rewound so the
        next store reuses the id.  *session* routes every statement
        through one private :class:`~repro.ordb.sessions.Session`
        (parallel ingest gives each worker its own).
        """
        with self.obs.phase("store", doc=doc_name or None):
            stored = self._store(document, schema, doc_name, url,
                                 session)
        if self.obs.enabled:
            self.obs.metrics.counter("ingest.documents", unit="documents").inc()
        return stored

    def _store(self, document: Document | Element | str,
               schema: RegisteredSchema | None,
               doc_name: str, url: str,
               session: Session | None = None) -> StoredDocument:
        executor = session if session is not None else self.db
        tracer = self.obs.tracer if self.obs.enabled else None
        if isinstance(document, str):
            with self.obs.phase("parse", chars=len(document)):
                document = parse_xml(document, tracer=tracer)
        root = (document.root_element if isinstance(document, Document)
                else document)
        if schema is None:
            schema = self._schema_for_root(root.tag)
        if self.validate_documents and isinstance(document, Document):
            with self.obs.phase("validate"):
                report = schema.validator.validate(document)
            if not report.valid:
                raise XMLValidityError(
                    "document is not valid: "
                    + "; ".join(str(e) for e in report.errors[:3]))
        with self._facade_lock:
            self._next_doc_id += 1
            doc_id = self._next_doc_id
        try:
            with self._pin(doc_id), self._atomic(session):
                loader = DocumentLoader(schema.plan, doc_id,
                                        tracer=tracer)
                with self.obs.phase("shred"):
                    load_result = loader.load(document)
                with self.obs.phase(
                        "execute",
                        statements=len(load_result.statements)):
                    for statement in load_result.statements:
                        executor.execute(statement)
                stored = StoredDocument(
                    doc_id=doc_id, schema=schema,
                    load_result=load_result,
                    warnings=list(load_result.warnings))
                if (self.metadata is not None
                        and isinstance(document, Document)):
                    with self.obs.phase("metadata"):
                        self.metadata.register_document(
                            doc_id, document, schema.plan, doc_name,
                            url, on=executor)
                        stored.misc_count = (
                            self.metadata.register_misc_nodes(
                                doc_id, document, on=executor))
        except BaseException:
            with self._facade_lock:
                if self._next_doc_id == doc_id:
                    self._next_doc_id = doc_id - 1
            raise
        with self._facade_lock:
            self.documents[doc_id] = stored
        return stored

    def store_many(self, documents: Iterable[Document | Element | str],
                   schema: RegisteredSchema | None = None,
                   *, continue_on_error: bool = False,
                   retry: RetryPolicy | None = None,
                   doc_names: Sequence[str] | None = None,
                   url: str = "",
                   workers: int | None = None) -> IngestReport:
        """Bulk-load documents with per-document savepoints.

        The whole batch runs in one transaction; each document gets
        its own atomic scope (a savepoint), so a failing document
        rolls back alone.  Transient faults (see
        :mod:`repro.core.ingest`) are retried per *retry* — backoff
        sleeps go through the policy's injected clock.  Exhausted or
        permanent failures either abort and roll back the whole batch
        (default) or, with ``continue_on_error=True``, quarantine the
        document and keep going.  The returned report holds one
        outcome per document, in input order.

        ``workers=N`` (N >= 1) switches to a thread pool where every
        worker drives its own engine session and each document
        commits in its own transaction.  Retry and quarantine behave
        as in the serial path; a batch abort compensates by deleting
        the documents already committed.  Lock-timeout and deadlock
        errors are transient, so contention between workers is
        retried like any connection fault.
        """
        policy = retry or RetryPolicy()
        if workers is not None and workers >= 1:
            return self._store_many_parallel(
                list(documents), schema,
                continue_on_error=continue_on_error, policy=policy,
                doc_names=doc_names, url=url, workers=workers)
        report = IngestReport()
        batch_doc_id = self._next_doc_id
        batch_docs = set(self.documents)
        try:
            with self._atomic():
                for index, document in enumerate(documents):
                    if (doc_names is not None
                            and index < len(doc_names)):
                        name = doc_names[index]
                    else:
                        name = f"doc[{index}]"
                    outcome = self._store_with_retry(
                        document, schema, name, url, index, policy)
                    report.outcomes.append(outcome)
                    if not outcome.stored and not continue_on_error:
                        # unwind the surrounding transaction:
                        # stored-so-far documents roll back with it
                        assert outcome.error is not None
                        raise outcome.error
        except BaseException:
            # the engine rolled back; rewind the facade-side
            # bookkeeping for documents stored earlier in this batch
            for doc_id in list(self.documents):
                if doc_id not in batch_docs:
                    del self.documents[doc_id]
            if self._next_doc_id >= batch_doc_id:
                self._next_doc_id = batch_doc_id
            raise
        return report

    def _store_many_parallel(self, documents: list,
                             schema: RegisteredSchema | None, *,
                             continue_on_error: bool,
                             policy: RetryPolicy,
                             doc_names: Sequence[str] | None,
                             url: str, workers: int) -> IngestReport:
        """The ``workers=N`` bulk load: per-worker sessions,
        per-document transactions, compensation instead of rollback.

        Each pool thread lazily opens one session and keeps it for
        the whole batch.  With ``continue_on_error=False`` the first
        failure sets a stop flag (in-flight documents finish, queued
        ones are skipped), every already-committed document of the
        batch is deleted again, and the failure is re-raised — so the
        all-or-nothing contract of the serial path holds even though
        the documents committed independently.
        """
        local = threading.local()
        sessions: list[Session] = []
        sessions_lock = threading.Lock()
        stop = threading.Event()

        def worker_session() -> Session:
            session = getattr(local, "session", None)
            if session is None:
                session = self.db.session(name="ingest-worker")
                local.session = session
                with sessions_lock:
                    sessions.append(session)
            return session

        def run(index: int, document) -> DocumentOutcome | None:
            if stop.is_set():
                return None
            if doc_names is not None and index < len(doc_names):
                name = doc_names[index]
            else:
                name = f"doc[{index}]"
            outcome = self._store_with_retry(
                document, schema, name, url, index, policy,
                session=worker_session())
            if not outcome.stored and not continue_on_error:
                stop.set()
            return outcome

        try:
            with ThreadPoolExecutor(
                    max_workers=workers,
                    thread_name_prefix="ingest") as pool:
                futures = [pool.submit(run, index, document)
                           for index, document in enumerate(documents)]
                results = [future.result() for future in futures]
        finally:
            for session in sessions:
                session.close()
        report = IngestReport()
        report.outcomes.extend(o for o in results if o is not None)
        report.outcomes.sort(key=lambda o: o.index)
        if not continue_on_error:
            failed = next(
                (o for o in report.outcomes if not o.stored), None)
            if failed is not None:
                # compensate: the committed part of the batch goes away
                for outcome in report.outcomes:
                    if outcome.stored and outcome.doc_id is not None:
                        self.delete(outcome.doc_id)
                assert failed.error is not None
                raise failed.error
        return report

    def _store_with_retry(self, document, schema, doc_name: str,
                          url: str, index: int,
                          policy: RetryPolicy,
                          session: Session | None = None
                          ) -> DocumentOutcome:
        attempt = 0
        while True:
            attempt += 1
            try:
                stored = self.store(document, schema,
                                    doc_name=doc_name, url=url,
                                    session=session)
            except Exception as error:
                kind = classify(error)
                if (kind == "transient"
                        and attempt < policy.max_attempts):
                    if self.obs.enabled:
                        self.obs.metrics.counter("ingest.retries", unit="retries").inc()
                    policy.wait(attempt)
                    continue
                if self.obs.enabled:
                    self.obs.metrics.counter(
                        "ingest.quarantined", unit="documents").inc()
                return DocumentOutcome(
                    index=index, doc_name=doc_name,
                    status="quarantined", attempts=attempt,
                    error=error, error_code=error_code(error),
                    classification=kind)
            return DocumentOutcome(
                index=index, doc_name=doc_name, status="stored",
                doc_id=stored.doc_id, attempts=attempt)

    # -- fetching documents --------------------------------------------------------------

    def fetch(self, doc_id: int, restore_misc: bool = True) -> Document:
        """Reconstruct a stored document as a DOM tree."""
        stored = self._stored(doc_id)
        with self._pin(doc_id):
            retriever = Retriever(self.db, stored.schema.plan)
            root = retriever.fetch(doc_id)
            document = Document()
            if self.metadata is not None:
                info = self.metadata.document_info(doc_id)
                if info is not None:
                    document.xml_version = str(info[3])
                    document.encoding = str(info[4])
                    if info[5] is not None:
                        document.standalone = str(info[5]).strip() == "Y"
            document.append(root)
            if restore_misc and self.metadata is not None:
                self.metadata.restore_misc_nodes(doc_id, root, document)
        return document

    def fetch_text(self, doc_id: int, indent: str = "",
                   resubstitute_entities: bool = True) -> str:
        """Reconstruct a stored document as XML text (Section 6.1:
        entity references are re-substituted from the meta-table)."""
        stored = self._stored(doc_id)
        document = self.fetch(doc_id)
        entities: dict[str, str] = {}
        if resubstitute_entities and self.metadata is not None:
            entities = self.metadata.entities_for(stored.schema.schema_id)
        serializer = Serializer(indent=indent,
                                entity_definitions=entities)
        return serializer.serialize(document)

    def _stored(self, doc_id: int) -> StoredDocument:
        stored = self.documents.get(doc_id)
        if stored is None:
            raise LookupError(f"no stored document with id {doc_id}")
        return stored

    # -- deleting documents --------------------------------------------------------------

    def delete(self, doc_id: int) -> int:
        """Remove one stored document: every row whose synthetic
        ``IDElementname`` belongs to the document, plus its meta-data.

        Returns the number of rows deleted.  REFs from other documents
        never point into a deleted document (ids are document-scoped),
        so no dangling references are introduced.

        The deletes run in one atomic scope: a document disappears
        all-or-nothing.  That matters beyond tidiness — batch-abort
        compensation (``store_many`` without ``continue_on_error``)
        deletes the committed part of an aborted batch, and on a
        durable engine each transaction is one WAL record; per-table
        autocommit deletes would let a crash mid-compensation leave a
        half-deleted document in the replay path.
        """
        stored = self._stored(doc_id)
        plan = stored.schema.plan
        deleted = 0
        with self._pin(doc_id), self._atomic():
            for element in plan.table_stored_elements():
                result = self.db.execute(
                    f"DELETE FROM {element.table} t"
                    f" WHERE t.{element.id_column} = 'D{doc_id}'"
                    f" OR t.{element.id_column} LIKE 'D{doc_id}.%'")
                deleted += result.rowcount
            if self.metadata is not None:
                deleted += self.db.execute(
                    f"DELETE FROM TabMetadata WHERE DocID = {doc_id}"
                ).rowcount
                deleted += self.db.execute(
                    f"DELETE FROM TabMiscNode WHERE DocID = {doc_id}"
                ).rowcount
        del self.documents[doc_id]
        return deleted

    # -- querying -------------------------------------------------------------------------

    def path_query(self, path: str | list[str],
                   predicate: tuple[str, str, str] | None = None,
                   doc_id: int | None = None,
                   schema: RegisteredSchema | None = None,
                   select: str | None = None) -> PathQuery:
        """Render (but do not run) the dot-notation SQL for a path."""
        if schema is None:
            steps = ([s for s in path.split("/") if s]
                     if isinstance(path, str) else list(path))
            schema = self._schema_for_root(steps[0])
        return PathQueryBuilder(schema.plan).build(path, predicate,
                                                   doc_id, select)

    def query(self, path: str | list[str],
              predicate: tuple[str, str, str] | None = None,
              doc_id: int | None = None,
              schema: RegisteredSchema | None = None,
              select: str | None = None) -> Result:
        """Build and execute a path query."""
        rendered = self.path_query(path, predicate, doc_id, schema,
                                   select)
        return self.db.execute(rendered.sql)

    def sql(self, statement: str) -> Result:
        """Escape hatch: run raw SQL against the embedded engine."""
        return self.db.execute(statement)
