"""Object views over relationally shredded data (Section 6.3).

"Besides supporting the creation of tables with object types as
structured column values, Oracle also supports the creation of
database views that can deliver structured rows of data."  The paper's
example superimposes the generated object types onto a conventional
relational schema, computing set-valued elements dynamically with
``CAST (MULTISET (...))``.

This module builds such views mechanically: given the mapping plan
(which owns the object types) and an :class:`InliningMapping` (the
relational schema of reference [9] that owns the shredded rows), it
emits ``CREATE VIEW OView_X AS SELECT Type_X(...) ...`` statements.
"""

from __future__ import annotations

from repro.core.naming import NameGenerator
from repro.relational.inlining import InliningMapping, Relation
from .generator import TypeMember, type_members
from .plan import ElementPlan, MappingPlan, Storage


class UnsupportedForViews(ValueError):
    """The plan uses features the view builder cannot express."""


class ObjectViewBuilder:
    """Builds object views bridging a relational schema to OR types."""

    def __init__(self, plan: MappingPlan, relational: InliningMapping,
                 names: NameGenerator | None = None):
        self.plan = plan
        self.relational = relational
        self.names = names or NameGenerator()
        self._alias_counter = 0

    # -- public API --------------------------------------------------------------

    def view_name(self, element_name: str) -> str:
        return self.names.object_view(element_name)

    def build_view(self, element_name: str | None = None) -> str:
        """CREATE VIEW statement for one relation-backed element."""
        element_name = element_name or self.plan.root.name
        plan = self.plan.element(element_name)
        relation = self.relational.relations.get(element_name)
        if plan is None or plan.object_type is None:
            raise UnsupportedForViews(
                f"<{element_name}> has no object type in the plan")
        if relation is None:
            raise UnsupportedForViews(
                f"<{element_name}> has no relation in the shredded"
                f" schema")
        self._alias_counter = 0
        alias = self._next_alias()
        constructor = self._constructor(plan, relation, alias, ())
        return (f"CREATE VIEW {self.view_name(element_name)} AS"
                f" SELECT {constructor} AS {_column_label(element_name)}"
                f" FROM {relation.table} {alias}")

    def build_all(self) -> list[str]:
        """Views for every element that has both a type and a relation."""
        statements = []
        for name, plan in self.plan.elements.items():
            if plan.object_type is None:
                continue
            if name not in self.relational.relations:
                continue
            statements.append(self.build_view(name))
        return statements

    # -- construction ----------------------------------------------------------------

    def _next_alias(self) -> str:
        self._alias_counter += 1
        return f"r{self._alias_counter}"

    def _constructor(self, plan: ElementPlan, relation: Relation,
                     alias: str, path: tuple[str, ...]) -> str:
        arguments = [
            self._member_expression(member, plan, relation, alias, path)
            for member in type_members(plan, self.plan)
        ]
        return f"{plan.object_type}({', '.join(arguments)})"

    def _member_expression(self, member: TypeMember, plan: ElementPlan,
                           relation: Relation, alias: str,
                           path: tuple[str, ...]) -> str:
        if member.kind == "id":
            if path:
                return "NULL"  # inlined levels have no own row id
            return f"'V' || {alias}.ID{relation.table}"
        if member.kind == "text":
            if not path and relation.has_text:
                return f"{alias}.VAL"
            column = self._column(relation, path, None)
            return f"{alias}.{column}" if column else "NULL"
        if member.kind == "xmlattr":
            if member.attribute.ref_target is not None:
                raise UnsupportedForViews(
                    "IDREF-to-REF columns cannot be recomputed by an"
                    " object view")
            column = self._column(relation, path,
                                  member.attribute.xml_name)
            return f"{alias}.{column}" if column else "NULL"
        if member.kind == "attrlist":
            inner = []
            for attribute in plan.attr_list.attributes:
                column = self._column(relation, path, attribute.xml_name)
                inner.append(f"{alias}.{column}" if column else "NULL")
            return (f"{plan.attr_list.type_name}({', '.join(inner)})")
        if member.kind == "parentref":
            return "NULL"
        link = member.link
        child = link.child
        if link.storage is Storage.SCALAR_COLUMN:
            column = self._column(relation, path + (child.name,), None)
            return f"{alias}.{column}" if column else "NULL"
        if link.storage is Storage.OBJECT_COLUMN:
            if child.name in self.relational.relations:
                raise UnsupportedForViews(
                    f"single-valued <{child.name}> is relation-mapped;"
                    f" the view builder expects it inlined")
            return self._constructor(child, relation, alias,
                                     path + (child.name,))
        if link.storage is Storage.SCALAR_COLLECTION:
            return self._multiset_scalar(link, relation, alias)
        if link.storage is Storage.OBJECT_COLLECTION:
            return self._multiset_object(link, relation, alias)
        raise UnsupportedForViews(
            f"storage {link.storage.value} for <{child.name}> cannot"
            f" be expressed as a view (REF values need real rows)")

    def _multiset_scalar(self, link, relation: Relation,
                         alias: str) -> str:
        child_relation = self._child_relation(link.child.name)
        child_alias = self._next_alias()
        return (f"CAST(MULTISET(SELECT {child_alias}.VAL"
                f" FROM {child_relation.table} {child_alias}"
                f" WHERE {child_alias}.PARENTID ="
                f" {alias}.ID{relation.table})"
                f" AS {link.collection_type})")

    def _multiset_object(self, link, relation: Relation,
                         alias: str) -> str:
        child_relation = self._child_relation(link.child.name)
        child_alias = self._next_alias()
        constructor = self._constructor(link.child, child_relation,
                                        child_alias, ())
        return (f"CAST(MULTISET(SELECT {constructor}"
                f" FROM {child_relation.table} {child_alias}"
                f" WHERE {child_alias}.PARENTID ="
                f" {alias}.ID{relation.table})"
                f" AS {link.collection_type})")

    def _child_relation(self, element_name: str) -> Relation:
        relation = self.relational.relations.get(element_name)
        if relation is None:
            raise UnsupportedForViews(
                f"set-valued <{element_name}> has no relation in the"
                f" shredded schema")
        return relation

    def _column(self, relation: Relation, path: tuple[str, ...],
                attribute: str | None) -> str | None:
        for column in relation.columns:
            if column.path != path:
                continue
            if attribute is None and not column.is_attribute:
                return column.name
            if column.is_attribute and column.attribute == attribute:
                return column.name
        return None


def _column_label(element_name: str) -> str:
    from repro.core.naming import clean_xml_name

    return clean_xml_name(element_name)[:30]
