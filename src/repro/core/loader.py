"""INSERT generation: store a document according to a mapping plan.

The headline behaviour of Section 4.2: with nested collection types a
whole document becomes a *single* INSERT statement whose nested
constructor calls mirror the document tree.  Storage decisions that
involve object tables (recursion, Oracle-8 child tables, ID/IDREF)
add further INSERTs — child rows first, parents referencing them
through scalar subqueries on the synthetic ``IDElementname`` keys the
paper introduces exactly for this purpose ("We introduced an
additional unique attribute for the sole purpose of simplifying the
generation of INSERT operations").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ordb.errors import DanglingReference
from repro.relational.shredder import sql_quote
from repro.xmlkit.dom import Document, Element
from repro.xmlkit.serializer import serialize
from .generator import TypeMember, type_members
from .plan import ElementKind, ElementPlan, MappingPlan, Storage


@dataclass
class LoadResult:
    """Everything the facade needs to know about one load."""

    doc_id: int
    statements: list[str] = field(default_factory=list)
    root_row_id: str = ""
    warnings: list[str] = field(default_factory=list)

    @property
    def insert_count(self) -> int:
        return sum(1 for s in self.statements
                   if s.lstrip().upper().startswith("INSERT"))

    @property
    def update_count(self) -> int:
        return sum(1 for s in self.statements
                   if s.lstrip().upper().startswith("UPDATE"))


@dataclass
class _PendingIdref:
    """An IDREF column to fill in after all rows exist."""

    table: str
    id_column: str
    row_id: str
    column: str
    idref_value: str
    target: ElementPlan
    element: Element
    attribute: str


def element_path(element: Element) -> str:
    """An XPath-like location for error messages:
    ``/Root/Child[2]/Leaf``."""
    parts: list[str] = []
    node: object = element
    while isinstance(node, Element):
        parent = node.parent
        if isinstance(parent, Element):
            siblings = parent.find_all(node.tag)
            if len(siblings) > 1:
                position = next(
                    index for index, sibling
                    in enumerate(siblings, start=1)
                    if sibling is node)
                parts.append(f"{node.tag}[{position}]")
            else:
                parts.append(node.tag)
        else:
            parts.append(node.tag)
        node = parent
    return "/" + "/".join(reversed(parts))


class DocumentLoader:
    """Generates the SQL that stores one document."""

    def __init__(self, plan: MappingPlan, doc_id: int, tracer=None):
        self.plan = plan
        self.doc_id = doc_id
        #: optional :class:`repro.obs.Tracer`; adds a ``shred`` span
        self.tracer = tracer
        self.result = LoadResult(doc_id)
        self._counter = 0
        self._root_element: Element | None = None
        #: DOM elements already stored as rows (pass A): node -> row id
        self._stored_rows: dict[int, str] = {}
        self._row_elements: dict[int, Element] = {}
        self._pending_idrefs: list[_PendingIdref] = []

    # -- public API --------------------------------------------------------------

    def load(self, document: Document | Element) -> LoadResult:
        if self.tracer is None:
            return self._load(document)
        with self.tracer.span("insert_gen", doc_id=self.doc_id) as span:
            result = self._load(document)
            span.set(inserts=result.insert_count,
                     updates=result.update_count)
            return result

    def _load(self, document: Document | Element) -> LoadResult:
        root = (document.root_element if isinstance(document, Document)
                else document)
        if root.tag != self.plan.root.name:
            raise ValueError(
                f"document root <{root.tag}> does not match schema root"
                f" <{self.plan.root.name}>")
        self._root_element = root
        self._insert_id_targets(root)
        self.result.root_row_id = self._insert_table_row(
            self.plan.root, root, parent_id=None, parent_plan=None,
            parent_link=None)
        self._emit_idref_updates()
        return self.result

    # -- identifiers ----------------------------------------------------------------

    def _row_id_for(self, element: Element) -> str:
        """Root gets the bare ``D<doc>`` id the retriever looks up."""
        if element is self._root_element:
            return f"D{self.doc_id}"
        self._counter += 1
        return f"D{self.doc_id}.{self._counter:08d}"

    # -- pass A: ID/IDREF targets ------------------------------------------------------

    def _idref_target_names(self) -> set[str]:
        names: set[str] = set()
        for plan in self.plan.elements.values():
            pool = (plan.attr_list.attributes if plan.attr_list
                    else plan.attributes)
            for attribute in pool:
                if attribute.ref_target is not None:
                    names.add(attribute.ref_target)
        return names

    def _insert_id_targets(self, root: Element) -> None:
        target_names = self._idref_target_names()
        if not target_names:
            return
        for element in root.iter_elements():
            if element.tag not in target_names or element is root:
                continue
            plan = self.plan.element(element.tag)
            if plan is None or not plan.is_table_stored:
                continue
            if id(element) in self._stored_rows:
                continue
            self._insert_table_row(plan, element, parent_id=None,
                                   parent_plan=None, parent_link=None)

    # -- table rows ----------------------------------------------------------------------

    def _insert_table_row(self, plan: ElementPlan, element: Element,
                          parent_id: str | None,
                          parent_plan: ElementPlan | None,
                          parent_link) -> str:
        if id(element) in self._stored_rows:
            return self._stored_rows[id(element)]
        row_id = self._row_id_for(element)
        self._stored_rows[id(element)] = row_id
        self._row_elements[id(element)] = element
        arguments: list[str] = []
        child_table_links = []
        for member in type_members(plan, self.plan):
            if member.kind == "parentref":
                if (parent_plan is not None and parent_link is not None
                        and member.parent is parent_plan):
                    arguments.append(self._ref_subquery(
                        parent_plan, parent_id))
                else:
                    arguments.append("NULL")
            else:
                arguments.append(self._member_value(
                    member, plan, element, row_id))
        for link in plan.links:
            if link.storage is Storage.CHILD_TABLE:
                child_table_links.append(link)
        constructor = f"{plan.object_type}({', '.join(arguments)})"
        self.result.statements.append(
            f"INSERT INTO {plan.table} VALUES({constructor})")
        for link in child_table_links:
            for child_element in element.find_all(link.child.name):
                self._insert_table_row(link.child, child_element,
                                       parent_id=row_id,
                                       parent_plan=plan,
                                       parent_link=link)
        return row_id

    @staticmethod
    def _ref_subquery(target: ElementPlan, row_id: str | None) -> str:
        if row_id is None:
            return "NULL"
        return (f"(SELECT REF(x_) FROM {target.table} x_"
                f" WHERE x_.{target.id_column} = {sql_quote(row_id)})")

    # -- member values --------------------------------------------------------------------

    def _member_value(self, member: TypeMember, plan: ElementPlan,
                      element: Element, row_id: str) -> str:
        if member.kind == "id":
            return sql_quote(row_id)
        if member.kind == "text":
            return self._text_value(plan, element)
        if member.kind == "xmlattr":
            return self._attribute_value(member, plan, element, row_id)
        if member.kind == "attrlist":
            return self._attrlist_value(plan, element, row_id)
        assert member.kind == "link"
        return self._link_value(member.link, element)

    def _text_value(self, plan: ElementPlan, element: Element) -> str:
        if plan.kind is ElementKind.ANY or (
                plan.kind is ElementKind.MIXED
                and self.plan.config.mixed_as_markup):
            inner = "".join(serialize(child)
                            for child in element.children)
            return sql_quote(inner)
        if plan.kind is ElementKind.MIXED:
            return sql_quote(element.text_content())
        return sql_quote(element.text())

    def _attribute_value(self, member: TypeMember, plan: ElementPlan,
                         element: Element, row_id: str) -> str:
        attribute = member.attribute
        value = element.get(attribute.xml_name)
        if value is None:
            return "NULL"
        if attribute.ref_target is None:
            return sql_quote(value)
        target = self.plan.element(attribute.ref_target)
        if plan.is_table_stored:
            # fill by UPDATE once every row exists (forward IDREFs)
            self._pending_idrefs.append(_PendingIdref(
                table=plan.table, id_column=plan.id_column,
                row_id=row_id, column=member.column,
                idref_value=value, target=target,
                element=element, attribute=attribute.xml_name))
            return "NULL"
        # inline element: the target row already exists (pass A)
        return self._idref_subquery(target, value)

    def _idref_subquery(self, target: ElementPlan, value: str) -> str:
        id_attribute = next(
            (attribute for attribute in
             (target.attr_list.attributes if target.attr_list
              else target.attributes)
             if attribute.is_id), None)
        if id_attribute is None:
            self.result.warnings.append(
                f"IDREF '{value}': target <{target.name}> has no ID"
                f" attribute column")
            return "NULL"
        if target.attr_list is not None:
            column = (f"{target.attr_list.column}"
                      f".{id_attribute.db_name}")
        else:
            column = id_attribute.db_name
        return (f"(SELECT REF(x_) FROM {target.table} x_"
                f" WHERE x_.{column} = {sql_quote(value)})")

    def _attrlist_value(self, plan: ElementPlan, element: Element,
                        row_id: str) -> str:
        attr_list = plan.attr_list
        assert attr_list is not None
        if not any(element.has_attribute(a.xml_name)
                   for a in attr_list.attributes):
            return "NULL"
        arguments = []
        for attribute in attr_list.attributes:
            value = element.get(attribute.xml_name)
            if value is None:
                arguments.append("NULL")
            elif attribute.ref_target is not None:
                target = self.plan.element(attribute.ref_target)
                arguments.append(self._idref_subquery(target, value))
            else:
                arguments.append(sql_quote(value))
        return f"{attr_list.type_name}({', '.join(arguments)})"

    # -- link values -------------------------------------------------------------------------

    def _link_value(self, link, element: Element) -> str:
        children = element.find_all(link.child.name)
        if link.storage is Storage.SCALAR_COLUMN:
            if not children:
                return "NULL"
            return sql_quote(self._scalar_text(link.child, children[0]))
        if link.storage is Storage.SCALAR_COLLECTION:
            if not children:
                return "NULL"
            items = ", ".join(
                sql_quote(self._scalar_text(link.child, child))
                for child in children)
            return f"{link.collection_type}({items})"
        if link.storage is Storage.OBJECT_COLUMN:
            if not children:
                return "NULL"
            return self._inline_constructor(link.child, children[0])
        if link.storage is Storage.OBJECT_COLLECTION:
            if not children:
                return "NULL"
            items = ", ".join(
                self._inline_constructor(link.child, child)
                for child in children)
            return f"{link.collection_type}({items})"
        if link.storage is Storage.REF_COLUMN:
            if not children:
                return "NULL"
            child_id = self._insert_table_row(
                link.child, children[0], None, None, None)
            return self._ref_subquery(link.child, child_id)
        assert link.storage is Storage.REF_COLLECTION
        if not children:
            return "NULL"
        subqueries = []
        for child in children:
            child_id = self._insert_table_row(link.child, child, None,
                                              None, None)
            subqueries.append(self._ref_subquery(link.child, child_id))
        return f"{link.collection_type}({', '.join(subqueries)})"

    def _scalar_text(self, plan: ElementPlan, element: Element) -> str:
        if plan.kind is ElementKind.EMPTY:
            return "Y"  # presence flag for empty elements
        if plan.kind is ElementKind.ANY or (
                plan.kind is ElementKind.MIXED
                and self.plan.config.mixed_as_markup):
            return "".join(serialize(child) for child in element.children)
        if plan.kind is ElementKind.MIXED:
            return element.text_content()
        return element.text()

    def _inline_constructor(self, plan: ElementPlan,
                            element: Element) -> str:
        row_id = ""  # inline objects carry no synthetic id
        arguments = []
        for member in type_members(plan, self.plan):
            if member.kind == "parentref":
                arguments.append("NULL")
            else:
                arguments.append(self._member_value(member, plan,
                                                    element, row_id))
        return f"{plan.object_type}({', '.join(arguments)})"

    # -- pass C: IDREF updates ------------------------------------------------------------------

    def _target_id_attribute(self, target: ElementPlan):
        pool = (target.attr_list.attributes if target.attr_list
                else target.attributes)
        return next((a for a in pool if a.is_id), None)

    def _check_idref_target(self, pending: _PendingIdref) -> None:
        """ORA-22888 when a forward IDREF never finds its row.

        Without this check the deferred UPDATE's scalar subquery comes
        back empty and the column is silently left NULL — a dangling
        REF the retriever only trips over much later.  Fail at load
        time instead, naming the offending ID value and where in the
        document it sits.  (Targets *without* an ID attribute keep the
        historical warn-and-NULL behaviour of
        :meth:`_idref_subquery`.)
        """
        id_attribute = self._target_id_attribute(pending.target)
        if id_attribute is None:
            return
        for candidate in self._row_elements.values():
            if (candidate.tag == pending.target.name
                    and candidate.get(id_attribute.xml_name)
                    == pending.idref_value):
                return
        raise DanglingReference(
            f"IDREF {pending.attribute}="
            f"'{pending.idref_value}' at"
            f" {element_path(pending.element)} references no"
            f" <{pending.target.name}> element: no row in"
            f" {pending.target.table} carries"
            f" {id_attribute.xml_name}='{pending.idref_value}'")

    def _emit_idref_updates(self) -> None:
        for pending in self._pending_idrefs:
            self._check_idref_target(pending)
            subquery = self._idref_subquery(pending.target,
                                            pending.idref_value)
            self.result.statements.append(
                f"UPDATE {pending.table} t_ SET {pending.column} ="
                f" {subquery}"
                f" WHERE t_.{pending.id_column} ="
                f" {sql_quote(pending.row_id)}")


def load_document(plan: MappingPlan, document: Document | Element,
                  doc_id: int) -> LoadResult:
    """Generate the load script for *document* (convenience wrapper)."""
    return DocumentLoader(plan, doc_id).load(document)
