"""Path queries: XPath-like paths rendered as dot-notation SQL.

Section 4.1 advertises the object-relational payoff: "The object
structure can be traversed using the dot notation without executing
join operations ... tight correspondence with XPath expressions."
This module turns ``/University/Student/Course/Professor/PName`` into
exactly that kind of statement against the generated schema —
collections become ``TABLE(...)`` unnestings of the *same* stored row,
never joins between separate tables (except for the Oracle-8 child
tables, where the join reappears; the CLM2 benchmark measures that
difference).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.shredder import sql_quote
from .plan import ElementPlan, MappingPlan, Storage


@dataclass
class PathQuery:
    """A rendered query plus the measures CLM2 compares."""

    sql: str
    from_count: int = 1
    unnest_count: int = 0
    join_count: int = 0  # genuine table-to-table joins (CHILD_TABLE)
    select_expression: str = ""


@dataclass
class _State:
    from_items: list[str] = field(default_factory=list)
    conditions: list[str] = field(default_factory=list)
    alias_counter: int = 0
    unnests: int = 0
    joins: int = 0

    def next_alias(self) -> str:
        self.alias_counter += 1
        return f"t{self.alias_counter}"


class PathQueryBuilder:
    """Builds dot-notation SQL for element paths over one plan."""

    def __init__(self, plan: MappingPlan):
        self.plan = plan

    def build(self, path: list[str] | str,
              predicate: tuple[str, str, str] | None = None,
              doc_id: int | None = None,
              select: str | None = None) -> PathQuery:
        """Render the query for *path*.

        ``path`` is '/'-separated or a list, starting at the root
        element.  ``predicate`` is an optional
        ``(child_path, operator, literal)`` filter and ``select`` an
        optional projection path, both relative to the last path
        element — together they express
        ``/University/Student[Course/Professor/PName='Jaeger']/LName``
        as ``build("/University/Student",
        ("Course/Professor/PName", "=", "Jaeger"), select="LName")``.
        ``doc_id`` restricts the query to one stored document.
        """
        steps = ([step for step in path.split("/") if step]
                 if isinstance(path, str) else list(path))
        if not steps or steps[0] != self.plan.root.name:
            raise ValueError(
                f"path must start at root element"
                f" '{self.plan.root.name}'")
        state = _State()
        root = self.plan.root
        alias = state.next_alias()
        state.from_items.append(f"{root.table} {alias}")
        if doc_id is not None:
            state.conditions.append(
                f"{alias}.{root.id_column} = {sql_quote(f'D{doc_id}')}")
        prefix = alias
        current = root
        for step in steps[1:]:
            prefix, current = self._descend(state, prefix, current, step)
        if select is not None:
            select_expression = self._relative_expression(
                state, prefix, current, select)
        else:
            select_expression = self._terminal_expression(prefix, current)
        if predicate is not None:
            child_path, operator, literal = predicate
            expression = self._relative_expression(
                state, prefix, current, child_path)
            state.conditions.append(
                f"{expression} {operator} {sql_quote(literal)}")
        sql = (f"SELECT {select_expression} FROM "
               + ", ".join(state.from_items))
        if state.conditions:
            sql += " WHERE " + " AND ".join(state.conditions)
        return PathQuery(
            sql=sql,
            from_count=len(state.from_items),
            unnest_count=state.unnests,
            join_count=state.joins,
            select_expression=select_expression,
        )

    # -- navigation -------------------------------------------------------------------

    def _descend(self, state: _State, prefix: str,
                 current: ElementPlan,
                 step: str) -> tuple[str, ElementPlan]:
        link = current.link_to(step)
        if link is None:
            raise ValueError(
                f"<{step}> is not a child of <{current.name}> in this"
                f" schema")
        child = link.child
        if link.storage is Storage.SCALAR_COLUMN:
            return f"{prefix}.{link.column}", child
        if link.storage is Storage.OBJECT_COLUMN:
            return f"{prefix}.{link.column}", child
        if link.storage is Storage.REF_COLUMN:
            # implicit dereference through the dot (Section 2.3)
            return f"{prefix}.{link.column}", child
        if link.storage in (Storage.SCALAR_COLLECTION,
                            Storage.OBJECT_COLLECTION,
                            Storage.REF_COLLECTION):
            alias = state.next_alias()
            state.from_items.append(
                f"TABLE({prefix}.{link.column}) {alias}")
            state.unnests += 1
            if link.storage is Storage.SCALAR_COLLECTION:
                return f"{alias}.COLUMN_VALUE", child
            if link.storage is Storage.REF_COLLECTION:
                return f"{alias}.COLUMN_VALUE", child
            return alias, child
        assert link.storage is Storage.CHILD_TABLE
        alias = state.next_alias()
        state.from_items.append(f"{child.table} {alias}")
        state.joins += 1
        state.conditions.append(
            f"{alias}.{link.column}.{current.id_column} ="
            f" {prefix}.{current.id_column}")
        return alias, child

    def _terminal_expression(self, prefix: str,
                             current: ElementPlan) -> str:
        if current.is_scalar_leaf:
            return prefix
        if current.text_column is not None:
            return f"{prefix}.{current.text_column}"
        return prefix

    def _relative_expression(self, state: _State, prefix: str,
                              current: ElementPlan,
                              child_path: str) -> str:
        expression = prefix
        plan = current
        for step in child_path.split("/"):
            link = plan.link_to(step)
            if link is None:
                attribute = plan.attribute_plan(step)
                if attribute is not None:
                    if plan.attr_list is not None:
                        return (f"{expression}.{plan.attr_list.column}"
                                f".{attribute.db_name}")
                    return f"{expression}.{attribute.db_name}"
                raise ValueError(
                    f"predicate step '{step}' not found under"
                    f" <{plan.name}>")
            if link.storage in (Storage.SCALAR_COLLECTION,
                                Storage.OBJECT_COLLECTION,
                                Storage.REF_COLLECTION,
                                Storage.CHILD_TABLE):
                expression, plan = self._descend(
                    state, expression, plan, step)
                continue
            expression = f"{expression}.{link.column}"
            plan = link.child
        if plan.text_column is not None and not plan.is_scalar_leaf:
            return f"{expression}.{plan.text_column}"
        return expression


def build_path_query(plan: MappingPlan, path: list[str] | str,
                     predicate: tuple[str, str, str] | None = None,
                     doc_id: int | None = None) -> PathQuery:
    """Convenience wrapper over :class:`PathQueryBuilder`."""
    return PathQueryBuilder(plan).build(path, predicate, doc_id)
