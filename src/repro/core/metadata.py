"""Meta-data management: Section 5's TabMetadata plus the Section 6.1
and Section 7 extensions.

The meta-table records, per stored document: provenance (name, URL),
the SchemaID of its document type, prolog information (XML version,
character set, standalone), and the ``DocData`` array that maps each
database name back to the XML construct it was derived from — the
information that distinguishes element-derived from attribute-derived
columns, which the mapping otherwise loses.

Extensions implemented as proposed by the paper:

* ``TabEntity`` (Section 6.1): internal entity definitions, so the
  retriever can re-substitute entity references that the parser
  expanded.
* ``TabMiscNode`` (Section 7 future work): comments and processing
  instructions with their location, so round-trips can restore them.
"""

from __future__ import annotations

from repro.ordb.engine import Database
from repro.relational.shredder import sql_quote
from repro.xmlkit.dom import (
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
)
from .generator import type_members
from .plan import MappingPlan

_METADATA_SCHEMA = """
CREATE TYPE Type_DocData AS OBJECT(
  XML_Type VARCHAR2(64),
  XML_Name VARCHAR2(4000),
  DB_Name VARCHAR2(4000),
  DB_Type VARCHAR2(4000),
  NameSpace VARCHAR2(4000));
CREATE TYPE TypeVA_DocData AS TABLE OF Type_DocData;
CREATE TABLE TabMetadata(
  DocID INTEGER PRIMARY KEY,
  DocName VARCHAR2(4000),
  URL VARCHAR2(4000),
  SchemaID VARCHAR2(64),
  NameSpace VARCHAR2(4000),
  XMLVersion VARCHAR2(16),
  CharacterSet VARCHAR2(64),
  Standalone CHAR(1),
  DocData TypeVA_DocData,
  LoadDate DATE)
 NESTED TABLE DocData STORE AS TabDocData_List;
CREATE TABLE TabEntity(
  SchemaID VARCHAR2(64) NOT NULL,
  EntityName VARCHAR2(4000) NOT NULL,
  Replacement VARCHAR2(4000));
CREATE TABLE TabMiscNode(
  DocID INTEGER NOT NULL,
  Position VARCHAR2(4000) NOT NULL,
  Kind VARCHAR2(16) NOT NULL,
  Target VARCHAR2(4000),
  Content VARCHAR2(4000));
"""


class MetadataRegistry:
    """Owns the meta-tables of one database instance."""

    def __init__(self, db: Database):
        self.db = db
        self._ensure_schema()

    def _ensure_schema(self) -> None:
        if "TABMETADATA" in self.db.catalog.tables:
            return
        self.db.executescript(_METADATA_SCHEMA)

    # -- document registration --------------------------------------------------------

    def register_document(self, doc_id: int, document: Document,
                          plan: MappingPlan,
                          doc_name: str = "", url: str = "",
                          load_date: str = "2002-03-25",
                          on=None) -> None:
        """Record one stored document (Section 5's meta-table row).

        ``load_date`` is explicit rather than ``SYSDATE`` to keep every
        generated script deterministic and replayable.  ``on`` is the
        executor — a :class:`~repro.ordb.sessions.Session` or the
        database itself — so the row joins the caller's transaction.
        """
        doc_data_items = ",\n    ".join(
            self._doc_data_literal(entry)
            for entry in self.doc_data_entries(plan))
        doc_data = (f"TypeVA_DocData({doc_data_items})"
                    if doc_data_items else "NULL")
        standalone = "NULL"
        if document.standalone is not None:
            standalone = "'Y'" if document.standalone else "'N'"
        # Section 5: "the namespace definitions are stored in the
        # meta-table as well" — record the root's default namespace
        namespace = document.root_element.get("xmlns")
        (on or self.db).execute(
            f"INSERT INTO TabMetadata VALUES({doc_id},"
            f" {sql_quote(doc_name)}, {sql_quote(url)},"
            f" {sql_quote(plan.schema_id or '')},"
            f" {'NULL' if namespace is None else sql_quote(namespace)},"
            f" {sql_quote(document.xml_version or '1.0')},"
            f" {sql_quote(document.encoding or 'UTF-8')},"
            f" {standalone}, {doc_data}, DATE '{load_date}')")

    @staticmethod
    def _doc_data_literal(entry: tuple[str, str, str, str]) -> str:
        xml_type, xml_name, db_name, db_type = entry
        return (f"Type_DocData({sql_quote(xml_type)},"
                f" {sql_quote(xml_name)}, {sql_quote(db_name)},"
                f" {sql_quote(db_type)}, NULL)")

    def doc_data_entries(self, plan: MappingPlan
                         ) -> list[tuple[str, str, str, str]]:
        """(XML_Type, XML_Name, DB_Name, DB_Type) for every mapping.

        This answers the question the paper says the schema alone
        cannot: was a database attribute derived from an element or
        from an XML attribute?
        """
        entries: list[tuple[str, str, str, str]] = []
        for element in plan.elements.values():
            if element.object_type is not None:
                entries.append(("element", element.name,
                                element.object_type, "OBJECT TYPE"))
            if element.table is not None:
                entries.append(("element", element.name,
                                element.table, "TABLE"))
            for member in type_members(element, plan):
                if member.kind == "xmlattr":
                    entries.append((
                        "attribute", member.attribute.xml_name,
                        member.column, member.sql_type))
                elif member.kind == "text":
                    entries.append(("element", element.name,
                                    member.column, member.sql_type))
                elif member.kind == "link":
                    entries.append(("element", member.link.child.name,
                                    member.column, member.sql_type))
        return entries

    def document_info(self, doc_id: int):
        result = self.db.execute(
            f"SELECT m.DocName, m.URL, m.SchemaID, m.XMLVersion,"
            f" m.CharacterSet, m.Standalone, m.NameSpace"
            f" FROM TabMetadata m WHERE m.DocID = {doc_id}")
        return result.first()

    def document_count(self) -> int:
        return int(self.db.execute(
            "SELECT COUNT(*) FROM TabMetadata").scalar())

    # -- entities (Section 6.1) --------------------------------------------------------

    def register_entities(self, schema_id: str,
                          entities: dict[str, str],
                          on=None) -> None:
        for name, replacement in entities.items():
            (on or self.db).execute(
                f"INSERT INTO TabEntity VALUES({sql_quote(schema_id)},"
                f" {sql_quote(name)}, {sql_quote(replacement)})")

    def entities_for(self, schema_id: str) -> dict[str, str]:
        result = self.db.execute(
            f"SELECT e.EntityName, e.Replacement FROM TabEntity e"
            f" WHERE e.SchemaID = {sql_quote(schema_id)}")
        return {str(name): str(replacement or "")
                for name, replacement in result.rows}

    # -- comments / PIs (Section 7 extension) ----------------------------------------------

    def register_misc_nodes(self, doc_id: int,
                            document: Document, on=None) -> int:
        """Store comments and processing instructions with locations."""
        count = 0
        for position, node in _walk_positions(document):
            if isinstance(node, Comment):
                kind, target, content = "comment", "", node.data
            elif isinstance(node, ProcessingInstruction):
                kind, target, content = "pi", node.target, node.data
            else:
                continue
            (on or self.db).execute(
                f"INSERT INTO TabMiscNode VALUES({doc_id},"
                f" {sql_quote(position)}, {sql_quote(kind)},"
                f" {sql_quote(target)}, {sql_quote(content)})")
            count += 1
        return count

    def misc_nodes(self, doc_id: int) -> list[tuple[str, str, str, str]]:
        result = self.db.execute(
            f"SELECT n.Position, n.Kind, n.Target, n.Content"
            f" FROM TabMiscNode n WHERE n.DocID = {doc_id}"
            f" ORDER BY 1")
        return [(str(p), str(k), str(t or ""), str(c or ""))
                for p, k, t, c in result.rows]

    def restore_misc_nodes(self, doc_id: int, root: Element,
                           document: Document | None = None) -> int:
        """Reinsert stored comments/PIs into a reconstructed tree.

        In-root nodes ("1/...") go back into *root* at their recorded
        child positions; document-level nodes ("doc/...") are attached
        to *document* when one is given.
        """
        count = 0
        for position, kind, target, content in self.misc_nodes(doc_id):
            node: Node = (Comment(content) if kind == "comment"
                          else ProcessingInstruction(target, content))
            steps = position.split("/")
            if steps[0] == "doc":
                if document is not None:
                    node.parent = document
                    index = min(int(steps[1]) - 1,
                                len(document.children))
                    document.children.insert(max(index, 0), node)
                    count += 1
                continue
            parent: Element | None = root
            for step in steps[1:-1]:
                children = parent.child_elements
                index = int(step) - 1
                parent = (children[index]
                          if 0 <= index < len(children) else None)
                if parent is None:
                    break
            if parent is None:
                continue
            index = min(max(int(steps[-1]) - 1, 0),
                        len(parent.children))
            node.parent = parent
            parent.children.insert(index, node)
            count += 1
        return count


def _walk_positions(document: Document):
    """Yield (position, node) pairs for misc-node bookkeeping.

    Positions inside the root element are '1/<child indexes>' where
    indexes count *element* children on the path and the final step is
    the raw child slot; document-level nodes get 'doc/<slot>'.
    """

    def walk(element: Element, prefix: str):
        element_index = 0
        for slot, child in enumerate(element.children, start=1):
            if isinstance(child, Element):
                element_index += 1
                yield from walk(child, f"{prefix}/{element_index}")
            else:
                yield f"{prefix}/{slot}", child

    for slot, child in enumerate(document.children, start=1):
        if isinstance(child, Element):
            yield from walk(child, "1")
        else:
            yield f"doc/{slot}", child
