"""Template-driven export (Section 6.3's application of object views).

"Object views can be applied in template-driven mapping procedures,
i.e., SELECT queries on the object view can be embedded into XML
template documents.  This can be exploited by software utilities that
transfer data from object-relational databases to XML documents."

A template is an ordinary XML document.  Every element named
``sql:query`` is replaced by the result of the SELECT statement in its
text content, one row element per result row and one child element per
output column.  Composite values (the objects an object view yields)
expand recursively: object attributes become child elements,
collections repeat their element.

Template controls (attributes on ``sql:query``):

``row-element``
    Name of the per-row element (default ``row``).
``null``
    ``omit`` (default) drops NULL columns; ``empty`` emits empty
    elements.
"""

from __future__ import annotations

from repro.ordb.engine import Database
from repro.ordb.values import CollectionValue, ObjectValue, RefValue
from repro.xmlkit.dom import Document, Element, Node, Text
from repro.xmlkit.parser import parse as parse_xml

#: element name that marks an embedded query
QUERY_TAG = "sql:query"


class TemplateError(ValueError):
    """The template is malformed (e.g. an empty query element)."""


class TemplateProcessor:
    """Expands ``sql:query`` elements against one database."""

    def __init__(self, db: Database):
        self.db = db

    # -- public API -----------------------------------------------------------

    def process(self, template: str | Document) -> Document:
        """Return a new document with every query expanded."""
        if isinstance(template, str):
            template = parse_xml(template)
        result = Document()
        result.xml_version = template.xml_version
        result.encoding = template.encoding
        for child in template.children:
            if isinstance(child, Element):
                for node in self._expand(child):
                    result.append(node)
            elif child.node_type != "doctype":
                result.append(_clone(child))
        return result

    # -- expansion --------------------------------------------------------------

    def _expand(self, element: Element) -> list[Node]:
        if element.tag == QUERY_TAG:
            return self._run_query(element)
        clone = Element(element.tag)
        for name, attribute in element.attributes.items():
            clone.set(name, attribute.value, attribute.specified)
        for child in element.children:
            if isinstance(child, Element):
                for node in self._expand(child):
                    clone.append(node)
            else:
                clone.append(_clone(child))
        return [clone]

    def _run_query(self, element: Element) -> list[Node]:
        sql = element.text_content().strip()
        if not sql:
            raise TemplateError(
                f"<{QUERY_TAG}> element contains no SELECT statement")
        row_tag = element.get("row-element", "row")
        null_mode = element.get("null", "omit")
        if null_mode not in ("omit", "empty"):
            raise TemplateError(
                f"null= must be 'omit' or 'empty', got {null_mode!r}")
        result = self.db.execute(sql)
        rows: list[Node] = []
        for row in result.rows:
            row_element = Element(row_tag)
            for column, value in zip(result.columns, row):
                if value is None and null_mode == "omit":
                    continue
                row_element.append(
                    self._value_element(_element_name(column), value))
            rows.append(row_element)
        return rows

    def _value_element(self, name: str, value: object) -> Element:
        element = Element(name)
        if value is None:
            return element
        if isinstance(value, RefValue):
            value = self.db.dereference(value)
            if value is None:
                return element
        if isinstance(value, ObjectValue):
            for attribute, inner in value.attributes().items():
                if inner is None:
                    continue
                element.append(self._value_element(
                    _element_name(attribute), inner))
            return element
        if isinstance(value, CollectionValue):
            for item in value:
                if item is None:
                    continue
                element.append(self._value_element("item", item))
            return element
        element.append(Text(_render_scalar(value)))
        return element


def process_template(db: Database, template: str | Document) -> Document:
    """Expand *template* against *db* (convenience wrapper)."""
    return TemplateProcessor(db).process(template)


def _clone(node: Node) -> Node:
    """Shallow copy of a non-element node for the output tree."""
    import copy

    duplicate = copy.copy(node)
    duplicate.parent = None
    return duplicate


def _element_name(column: str) -> str:
    """Output column label -> legal XML element name."""
    cleaned = "".join(ch if ch.isalnum() or ch in "_-." else "_"
                      for ch in column)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = "c" + cleaned
    return cleaned


def _render_scalar(value: object) -> str:
    from decimal import Decimal

    if isinstance(value, Decimal):
        return format(value.normalize(), "f")
    return str(value)
