"""Schema generation: render a mapping plan to an executable SQL script.

The output reproduces Section 4's behaviour: the DTD tree is turned
into ``CREATE TYPE`` / ``CREATE TABLE`` statements "that can be
executed afterwards without any modification".  The member layout of
every generated object type is centralized in :func:`type_members` so
the loader (INSERT generation) and the retriever (reconstruction)
interpret constructors in exactly the order the DDL declares them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .plan import (
    AttributePlan,
    ChildLink,
    CollectionFlavor,
    ElementKind,
    ElementPlan,
    MappingConfig,
    MappingPlan,
    Storage,
)

#: Length of the synthetic IDElementname columns (Section 4.2's
#: "additional unique attribute").
ID_LENGTH = 64


@dataclass
class TypeMember:
    """One attribute of a generated object type, in declaration order."""

    column: str
    kind: str  # 'id' | 'text' | 'xmlattr' | 'attrlist' | 'link' | 'parentref'
    sql_type: str
    attribute: AttributePlan | None = None
    link: ChildLink | None = None
    parent: ElementPlan | None = None


@dataclass
class SchemaScript:
    """The generated DDL, plus bookkeeping for tests and examples."""

    statements: list[str] = field(default_factory=list)
    type_count: int = 0
    table_count: int = 0
    collection_count: int = 0

    @property
    def text(self) -> str:
        return ";\n".join(self.statements) + (";" if self.statements
                                              else "")

    def add(self, statement: str) -> None:
        self.statements.append(statement)


def child_table_parents(
        plan: MappingPlan) -> dict[str, list[tuple[ElementPlan,
                                                   ChildLink]]]:
    """child element name -> [(parent plan, CHILD_TABLE link)]."""
    result: dict[str, list[tuple[ElementPlan, ChildLink]]] = {}
    for parent in plan.elements.values():
        for link in parent.links:
            if link.storage is Storage.CHILD_TABLE:
                result.setdefault(link.child.name, []).append(
                    (parent, link))
    return result


def type_members(element: ElementPlan, plan: MappingPlan) -> list[TypeMember]:
    """Ordered members of the element's object type.

    Order: synthetic ID, text value, XML attributes (inline or as one
    attrList column), child links (DTD declaration order), then the
    Oracle-8 parent-REF columns.  This order *is* the constructor
    signature the loader emits.
    """
    config = plan.config
    members: list[TypeMember] = []
    if element.is_table_stored and element.id_column:
        members.append(TypeMember(element.id_column, "id",
                                  f"VARCHAR2({ID_LENGTH})"))
    if element.text_column:
        members.append(TypeMember(
            element.text_column, "text",
            config.hinted_type(element.name) or config.text_type()))
    if element.attr_list is not None:
        members.append(TypeMember(element.attr_list.column, "attrlist",
                                  element.attr_list.type_name))
    else:
        for attribute in element.attributes:
            members.append(TypeMember(
                attribute.db_name, "xmlattr",
                _attribute_sql_type(attribute, plan, config),
                attribute=attribute))
    for link in element.links:
        if link.storage is Storage.CHILD_TABLE:
            continue
        members.append(TypeMember(
            link.column, "link", _link_sql_type(link, config),
            link=link))
    for parent, link in child_table_parents(plan).get(element.name, []):
        members.append(TypeMember(
            link.column, "parentref", f"REF {parent.object_type}",
            link=link, parent=parent))
    return members


def _attribute_sql_type(attribute: AttributePlan, plan: MappingPlan,
                        config: MappingConfig) -> str:
    if attribute.ref_target is not None:
        target = plan.element(attribute.ref_target)
        if target is not None and target.object_type is not None:
            return f"REF {target.object_type}"
    return config.hinted_type(attribute.xml_name) or config.text_type()


def scalar_sql_type(element_name: str, config: MappingConfig) -> str:
    """Leaf column type: a Section 7 type hint, or the VARCHAR default."""
    return config.hinted_type(element_name) or config.text_type()


def _link_sql_type(link: ChildLink, config: MappingConfig) -> str:
    child = link.child
    if link.storage is Storage.SCALAR_COLUMN:
        return scalar_sql_type(child.name, config)
    if link.storage in (Storage.SCALAR_COLLECTION,
                        Storage.OBJECT_COLLECTION,
                        Storage.REF_COLLECTION):
        return link.collection_type
    if link.storage is Storage.OBJECT_COLUMN:
        return child.object_type
    assert link.storage is Storage.REF_COLUMN
    return f"REF {child.object_type}"


class SchemaGenerator:
    """Emits the DDL script for one mapping plan."""

    def __init__(self, plan: MappingPlan):
        self.plan = plan
        self.config = plan.config
        self._emitted_types: set[str] = set()
        self._script = SchemaScript()

    # -- entry point -----------------------------------------------------------------

    def generate(self) -> SchemaScript:
        # 1. forward declarations for every REF target (Section 6.2)
        for element in self.plan.table_stored_elements():
            self._script.add(f"CREATE TYPE {element.object_type}")
            self._script.type_count += 1
        # 2. types, bottom-up from the root
        self._emit_types(self.plan.root, set())
        # make sure table-stored elements unreachable through inline
        # links (e.g. pure CHILD_TABLE children) are also emitted
        for element in self.plan.elements.values():
            if element.object_type and element.object_type \
                    not in self._emitted_types:
                self._emit_types(element, set())
        # 3. tables, ordered so SCOPE FOR targets exist first
        for element in self._table_order():
            self._emit_table(element)
        return self._script

    # -- types ------------------------------------------------------------------------

    def _emit_types(self, element: ElementPlan,
                    in_progress: set[str]) -> None:
        if element.name in in_progress:
            return
        if element.object_type and element.object_type \
                in self._emitted_types:
            return
        in_progress.add(element.name)
        for link in element.links:
            if link.storage in (Storage.OBJECT_COLUMN,
                                Storage.OBJECT_COLLECTION,
                                Storage.CHILD_TABLE):
                self._emit_types(link.child, in_progress)
            elif link.storage in (Storage.REF_COLUMN,
                                  Storage.REF_COLLECTION):
                # REF targets only need their forward declaration here;
                # their full type is emitted on their own visit (or at
                # the fixup loop in generate()).
                if not link.child.recursive:
                    self._emit_types(link.child, in_progress)
        in_progress.discard(element.name)
        self._emit_collection_types(element)
        if element.object_type is None:
            return
        if element.object_type in self._emitted_types:
            return
        self._emitted_types.add(element.object_type)
        if element.attr_list is not None:
            attrs = ",\n  ".join(
                f"{attribute.db_name}"
                f" {_attribute_sql_type(attribute, self.plan, self.config)}"
                for attribute in element.attr_list.attributes)
            self._script.add(
                f"CREATE TYPE {element.attr_list.type_name} AS OBJECT(\n"
                f"  {attrs})")
            self._script.type_count += 1
        members = type_members(element, self.plan)
        body = ",\n  ".join(f"{member.column} {member.sql_type}"
                            for member in members)
        self._script.add(
            f"CREATE TYPE {element.object_type} AS OBJECT(\n  {body})")
        self._script.type_count += 1

    def _emit_collection_types(self, element: ElementPlan) -> None:
        for link in element.links:
            name = link.collection_type
            if name is None or name in self._emitted_types:
                continue
            self._emitted_types.add(name)
            if link.storage is Storage.SCALAR_COLLECTION:
                element_type = scalar_sql_type(link.child.name,
                                               self.config)
            elif link.storage is Storage.OBJECT_COLLECTION:
                element_type = link.child.object_type
            else:
                assert link.storage is Storage.REF_COLLECTION
                element_type = f"REF {link.child.object_type}"
            if (link.storage is Storage.REF_COLLECTION
                    or self.config.collection_flavor
                    is CollectionFlavor.NESTED_TABLE):
                # Section 6.2 uses TABLE OF REF for recursion; nested
                # tables are also the flavor choice of Section 2.2.
                self._script.add(
                    f"CREATE TYPE {name} AS TABLE OF {element_type}")
            else:
                self._script.add(
                    f"CREATE TYPE {name} AS"
                    f" VARRAY({self.config.varray_limit})"
                    f" OF {element_type}")
            self._script.collection_count += 1
            self._script.type_count += 1

    # -- tables ------------------------------------------------------------------------

    def _table_order(self) -> list[ElementPlan]:
        """Tables sorted so that SCOPE FOR targets come first."""
        stored = self.plan.table_stored_elements()
        index = {element.name: element for element in stored}
        # dependency: A -> B when A holds a REF column pointing at B
        dependencies: dict[str, set[str]] = {
            element.name: set() for element in stored}
        for element in stored:
            for member in type_members(element, self.plan):
                target = self._ref_target_of(member)
                if target is not None and target in index \
                        and target != element.name:
                    dependencies[element.name].add(target)
        ordered: list[ElementPlan] = []
        visiting: set[str] = set()
        done: set[str] = set()
        self._scope_cycles: set[str] = set()

        def visit(name: str) -> None:
            if name in done:
                return
            if name in visiting:
                self._scope_cycles.add(name)
                return
            visiting.add(name)
            for dependency in sorted(dependencies[name]):
                visit(dependency)
            visiting.discard(name)
            done.add(name)
            ordered.append(index[name])

        for element in stored:
            visit(element.name)
        return ordered

    def _ref_target_of(self, member: TypeMember) -> str | None:
        if member.kind == "parentref" and member.parent is not None:
            return member.parent.name
        if member.kind == "link" and member.link is not None \
                and member.link.storage is Storage.REF_COLUMN:
            return member.link.child.name
        if member.kind == "xmlattr" and member.attribute is not None:
            return member.attribute.ref_target
        return None

    def _emit_table(self, element: ElementPlan) -> None:
        clauses: list[str] = []
        if element.id_column:
            clauses.append(f"{element.id_column} PRIMARY KEY")
        if self.config.not_null_constraints:
            clauses.extend(self._not_null_clauses(element))
        if self.config.check_constraints:
            clauses.extend(self._check_clauses(element))
        if self.config.scope_constraints:
            clauses.extend(self._scope_clauses(element))
        body = "(\n  " + ",\n  ".join(clauses) + ")" if clauses else ""
        statement = f"CREATE TABLE {element.table} OF" \
                    f" {element.object_type}{body}"
        statement += self._store_clauses(element)
        self._script.add(statement)
        self._script.table_count += 1

    def _not_null_clauses(self, element: ElementPlan) -> list[str]:
        """NOT NULL for mandatory children and #REQUIRED attributes
        (Section 4.3) — only legal on the table's own columns."""
        clauses: list[str] = []
        for member in type_members(element, self.plan):
            if member.kind == "xmlattr" and member.attribute.required:
                if member.attribute.ref_target is not None:
                    # IDREF columns are filled by a deferred UPDATE
                    # (circular references), so NOT NULL cannot hold
                    # during loading — another Section 4.3 limitation.
                    continue
                clauses.append(f"{member.column} NOT NULL")
            elif member.kind == "link" and member.link is not None:
                link = member.link
                if not link.optional and not link.repeatable:
                    clauses.append(f"{member.column} NOT NULL")
                # '+' children are mandatory too, but collection
                # columns cannot be NOT NULL per Section 4.3 —
                # the drawback stands, nothing emitted.
        return clauses

    def _check_clauses(self, element: ElementPlan) -> list[str]:
        """The (not recommended) CHECK constraints of Section 4.3:
        NOT NULL conditions on attributes nested one level inside
        optional complex columns."""
        clauses: list[str] = []
        for link in element.links:
            if link.storage is not Storage.OBJECT_COLUMN:
                continue
            for inner in link.child.links:
                if (inner.storage is Storage.SCALAR_COLUMN
                        and not inner.optional):
                    clauses.append(
                        f"CHECK ({link.column}.{inner.column}"
                        f" IS NOT NULL)")
        return clauses

    def _scope_clauses(self, element: ElementPlan) -> list[str]:
        clauses: list[str] = []
        if element.name in self._scope_cycles:
            return clauses
        for member in type_members(element, self.plan):
            target_name = self._ref_target_of(member)
            if target_name is None:
                continue
            if target_name in self._scope_cycles:
                continue
            target = self.plan.element(target_name)
            if target is not None and target.table is not None:
                clauses.append(
                    f"SCOPE FOR ({member.column}) IS {target.table}")
        return clauses

    def _store_clauses(self, element: ElementPlan) -> str:
        """NESTED TABLE ... STORE AS for nested-table-typed columns."""
        parts: list[str] = []
        for link in element.links:
            if link.collection_type is None or link.column is None:
                continue
            is_nested = (
                link.storage is Storage.REF_COLLECTION
                or self.config.collection_flavor
                is CollectionFlavor.NESTED_TABLE)
            if not is_nested:
                continue
            link.storage_table = f"{element.table}_{link.column}_ST"[:30]
            parts.append(
                f" NESTED TABLE {link.column} STORE AS"
                f" {link.storage_table}")
        return "".join(parts)


def generate_schema(plan: MappingPlan) -> SchemaScript:
    """Render *plan* to DDL with a throwaway generator."""
    return SchemaGenerator(plan).generate()
