"""Comparison reporting: the paper's qualitative table, computed.

Produces the decomposition/navigation numbers that the paper's
argument rests on, for one document across all five mappings (the OR
mapping in both modes and the three generic baselines).  Used by the
`relational_comparison` example, the CLM benchmarks and tests, so the
numbers in EXPERIMENTS.md are regenerable from one place.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.loader import load_document
from repro.core.queries import PathQueryBuilder
from repro.core.xml2oracle import XML2Oracle
from repro.dtd.model import DTD
from repro.ordb.engine import Database
from repro.ordb.schema import CompatibilityMode
from repro.relational.attribute import AttributeMapping
from repro.relational.edge import EdgeMapping
from repro.relational.inlining import InliningMapping
from repro.xmlkit.dom import Document, Element


@dataclass
class MappingMeasurement:
    """One mapping's numbers for one document/query pair."""

    label: str
    insert_statements: int
    load_seconds: float
    query_joins: int
    query_seconds: float
    query_rows: int


@dataclass
class ComparisonReport:
    """All mappings side by side."""

    document_nodes: int
    measurements: list[MappingMeasurement] = field(default_factory=list)

    def by_label(self, label: str) -> MappingMeasurement:
        for measurement in self.measurements:
            if measurement.label == label:
                return measurement
        raise KeyError(label)

    def format_table(self) -> str:
        header = (f"{'mapping':<22}{'INSERTs':>8}{'load s':>9}"
                  f"{'joins':>7}{'query s':>9}{'rows':>6}")
        lines = [header, "-" * len(header)]
        for m in self.measurements:
            lines.append(
                f"{m.label:<22}{m.insert_statements:>8}"
                f"{m.load_seconds:>9.4f}{m.query_joins:>7}"
                f"{m.query_seconds:>9.4f}{m.query_rows:>6}")
        return "\n".join(lines)

    def ordering_holds(self) -> bool:
        """The CLM1 claim: OR9 < OR8 <= inlining < attribute < edge."""
        counts = [self.by_label(label).insert_statements
                  for label in ("or_oracle9", "or_oracle8", "inlining",
                                "attribute", "edge")]
        return (counts[0] == 1 and counts[0] < counts[1]
                and counts[1] <= counts[2] < counts[3] < counts[4])


def compare_mappings(dtd: DTD, document: Document | Element,
                     path: list[str],
                     query_repeats: int = 1) -> ComparisonReport:
    """Measure all five mappings on *document* and *path*."""
    root = (document.root_element if isinstance(document, Document)
            else document)
    report = ComparisonReport(
        document_nodes=sum(1 for _ in root.iter()))
    for mode, label in ((CompatibilityMode.ORACLE9, "or_oracle9"),
                        (CompatibilityMode.ORACLE8, "or_oracle8")):
        report.measurements.append(
            _measure_or(dtd, document, path, mode, label,
                        query_repeats))
    report.measurements.append(
        _measure_baseline(dtd, document, path, "inlining",
                          query_repeats))
    report.measurements.append(
        _measure_baseline(dtd, document, path, "attribute",
                          query_repeats))
    report.measurements.append(
        _measure_baseline(dtd, document, path, "edge", query_repeats))
    return report


def _measure_or(dtd: DTD, document, path: list[str],
                mode: CompatibilityMode, label: str,
                query_repeats: int) -> MappingMeasurement:
    tool = XML2Oracle(mode=mode, metadata=False,
                      validate_documents=False)
    tool.register_schema(dtd)
    plan = tool.schemas[0].plan
    result = load_document(plan, document, 1)
    start = time.perf_counter()
    for statement in result.statements:
        tool.db.execute(statement)
    load_seconds = time.perf_counter() - start
    query = PathQueryBuilder(plan).build("/" + "/".join(path))
    start = time.perf_counter()
    for _ in range(query_repeats):
        rows = tool.db.execute(query.sql).rows
    query_seconds = (time.perf_counter() - start) / query_repeats
    return MappingMeasurement(label, result.insert_count, load_seconds,
                              query.join_count, query_seconds,
                              len(rows))


def _measure_baseline(dtd: DTD, document, path: list[str], label: str,
                      query_repeats: int) -> MappingMeasurement:
    db = Database()
    if label == "edge":
        mapping = EdgeMapping()
        mapping.install(db)
        sql = mapping.path_query(path, doc_id=1)
    elif label == "attribute":
        mapping = AttributeMapping()
        mapping.prepare(mapping.collect_names(document))
        mapping.install(db)
        sql = mapping.path_query(path, doc_id=1)
    else:
        mapping = InliningMapping(dtd)
        mapping.install(db)
        sql = mapping.path_query(path)
    start = time.perf_counter()
    result = mapping.load(db, document, 1)
    load_seconds = time.perf_counter() - start
    joins = db.explain(sql).join_count
    start = time.perf_counter()
    for _ in range(query_repeats):
        rows = db.execute(sql).rows
    query_seconds = (time.perf_counter() - start) / query_repeats
    return MappingMeasurement(label, result.insert_count, load_seconds,
                              joins, query_seconds, len(rows))
