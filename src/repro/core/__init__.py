"""The paper's contribution: the XML2Oracle mapping system.

Public surface:

* :class:`XML2Oracle` — the end-to-end facade (parse, map, load,
  query, round-trip).
* :func:`analyze` / :func:`generate_schema` / :func:`load_document` —
  the pipeline stages, individually usable.
* :class:`PathQueryBuilder` — dot-notation SQL from XPath-like paths.
* :class:`ObjectViewBuilder` — Section 6.3 object views over shredded
  relational data.
* :mod:`repro.core.roundtrip` — fidelity measurement.
"""

from .analyzer import Analyzer, analyze
from .ingest import (
    NO_RETRY,
    DocumentOutcome,
    IngestReport,
    RetryPolicy,
    classify,
    error_code,
)
from .generator import (
    SchemaGenerator,
    SchemaScript,
    TypeMember,
    generate_schema,
    type_members,
)
from .loader import DocumentLoader, LoadResult, load_document
from .metadata import MetadataRegistry
from .naming import NameGenerator, SchemaIdAllocator
from .objectviews import ObjectViewBuilder, UnsupportedForViews
from .plan import (
    AttrListPlan,
    AttributePlan,
    ChildLink,
    CollectionFlavor,
    ElementKind,
    ElementPlan,
    MappingConfig,
    MappingPlan,
    Storage,
)
from .queries import PathQuery, PathQueryBuilder, build_path_query
from .reporting import (
    ComparisonReport,
    MappingMeasurement,
    compare_mappings,
)
from .retriever import Retriever
from .templates import TemplateError, TemplateProcessor, process_template
from .roundtrip import FidelityReport, compare, extract_facts, identical
from .xml2oracle import (
    RegisteredSchema,
    StoredDocument,
    XML2Oracle,
    infer_idref_targets,
)

__all__ = [
    "Analyzer",
    "AttrListPlan",
    "AttributePlan",
    "ChildLink",
    "ComparisonReport",
    "CollectionFlavor",
    "DocumentLoader",
    "DocumentOutcome",
    "IngestReport",
    "NO_RETRY",
    "ElementKind",
    "ElementPlan",
    "FidelityReport",
    "LoadResult",
    "MappingConfig",
    "MappingMeasurement",
    "MappingPlan",
    "MetadataRegistry",
    "NameGenerator",
    "ObjectViewBuilder",
    "PathQuery",
    "PathQueryBuilder",
    "RegisteredSchema",
    "Retriever",
    "RetryPolicy",
    "SchemaGenerator",
    "SchemaIdAllocator",
    "SchemaScript",
    "Storage",
    "StoredDocument",
    "TemplateError",
    "TemplateProcessor",
    "TypeMember",
    "UnsupportedForViews",
    "XML2Oracle",
    "analyze",
    "build_path_query",
    "classify",
    "compare",
    "compare_mappings",
    "error_code",
    "extract_facts",
    "generate_schema",
    "identical",
    "infer_idref_targets",
    "load_document",
    "process_template",
    "type_members",
]
