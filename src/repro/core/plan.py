"""The mapping plan: the analyzed, named blueprint of one schema.

The analyzer (Fig. 2 case analysis) produces a plan; the generator
renders it to DDL; the loader and retriever interpret it in both
directions.  Keeping the plan explicit — rather than weaving analysis
into generation — is what lets the same plan drive INSERT generation,
document reconstruction and path queries consistently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.dtd.content import ChildOccurrence
from repro.dtd.model import AttributeDecl, AttributeType


class ElementKind(enum.Enum):
    """Fig. 2's top-level element classification (plus DTD extras)."""

    SIMPLE = "simple"      # (#PCDATA)
    COMPLEX = "complex"    # element content
    MIXED = "mixed"        # (#PCDATA | a | ...)*
    EMPTY = "empty"        # EMPTY
    ANY = "any"            # ANY


class Storage(enum.Enum):
    """How a child element is physically represented in its parent."""

    SCALAR_COLUMN = "scalar"            # VARCHAR2 column (4.1)
    OBJECT_COLUMN = "object"            # object-typed column (4.1)
    SCALAR_COLLECTION = "scalar-coll"   # VARRAY/NT of VARCHAR2 (4.2)
    OBJECT_COLLECTION = "object-coll"   # VARRAY/NT of object (4.2, O9)
    REF_COLUMN = "ref"                  # REF to child's object table
    REF_COLLECTION = "ref-coll"         # collection of REF (6.2)
    CHILD_TABLE = "child-table"         # child row holds REF to parent
    #                                     (4.2, Oracle 8 workaround)


class CollectionFlavor(enum.Enum):
    """Which collection constructor the generator uses (Section 4.2)."""

    VARRAY = "varray"
    NESTED_TABLE = "nested-table"


@dataclass
class AttributePlan:
    """One XML attribute mapped to a DB column (Section 4.4)."""

    xml_name: str
    db_name: str
    declaration: AttributeDecl

    @property
    def required(self) -> bool:
        return self.declaration.required

    @property
    def is_id(self) -> bool:
        return self.declaration.attribute_type is AttributeType.ID

    @property
    def is_idref(self) -> bool:
        return self.declaration.attribute_type in (
            AttributeType.IDREF, AttributeType.IDREFS)

    #: set when an IDREF attribute is mapped to a REF column: the
    #: element type the reference points to (Section 4.4: this cannot
    #: be derived from the DTD, only from documents).
    ref_target: str | None = None


@dataclass
class AttrListPlan:
    """Object type wrapping an element's attribute list (Section 4.4)."""

    type_name: str          # TypeAttrL_X
    column: str             # attrListX
    attributes: list[AttributePlan] = field(default_factory=list)


@dataclass
class ChildLink:
    """One parent->child edge of the plan with its chosen storage."""

    child: "ElementPlan"
    occurrence: ChildOccurrence
    storage: Storage
    column: str | None = None           # attrX in the parent type
    collection_type: str | None = None  # TypeVA_X / TypeNT_X / TypeRef_X
    storage_table: str | None = None    # STORE AS name for nested tables

    @property
    def optional(self) -> bool:
        return self.occurrence.optional

    @property
    def repeatable(self) -> bool:
        return self.occurrence.repeatable


@dataclass
class ElementPlan:
    """Everything known about one element type's mapping."""

    name: str
    kind: ElementKind
    links: list[ChildLink] = field(default_factory=list)
    attributes: list[AttributePlan] = field(default_factory=list)
    attr_list: AttrListPlan | None = None

    # assigned names (generator fills these)
    object_type: str | None = None   # Type_X; None for plain scalars
    table: str | None = None         # TabX when table-stored
    text_column: str | None = None   # attrX inside own object type
    id_column: str | None = None     # IDX synthetic unique key (4.2)

    # structural flags
    is_table_stored: bool = False
    recursive: bool = False
    shared: bool = False

    @property
    def is_scalar_leaf(self) -> bool:
        """Maps to a bare VARCHAR2 value (no object type of its own)."""
        return self.object_type is None

    def link_to(self, child_name: str) -> ChildLink | None:
        for link in self.links:
            if link.child.name == child_name:
                return link
        return None

    def attribute_plan(self, xml_name: str) -> AttributePlan | None:
        pool = (self.attr_list.attributes if self.attr_list
                else self.attributes)
        for attribute in pool:
            if attribute.xml_name == xml_name:
                return attribute
        return None


@dataclass
class MappingConfig:
    """Tunable decisions of the generator.

    Defaults follow the paper's prototype: VARRAY collections
    (Section 4.2 'In our prototype, we chose the VARRAY collection
    type'), VARCHAR2(4000) leaves (Section 4.1), no CHECK constraints
    for optional complex content (Section 4.3 'not recommendable').
    """

    collection_flavor: CollectionFlavor = CollectionFlavor.VARRAY
    varray_limit: int = 1000
    text_length: int = 4000
    use_clob_for_text: bool = False   # Section 7 future work
    not_null_constraints: bool = True
    check_constraints: bool = False   # Section 4.3: not recommendable
    scope_constraints: bool = True
    map_idrefs_to_refs: bool = True   # Section 4.4
    share_types: bool = True          # graph mode (Section 6.2 advice)
    #: wrap XML attributes in a TypeAttrL_ object type (the Section 4.4
    #: methodology); False inlines them as attrName columns, matching
    #: the Section 4.2 example schema.
    attribute_list_types: bool = False
    #: Section 7 future work: "no type concept in DTDs -> simple
    #: elements and attributes can only be assigned the VARCHAR
    #: datatype".  This map supplies the missing type concept (an
    #: XML-Schema-style annotation layer): XML element or attribute
    #: name -> SQL scalar type ("NUMBER", "NUMBER(10,2)", "INTEGER",
    #: "DATE", "CLOB").  Unlisted names keep the VARCHAR default.
    type_hints: dict[str, str] = field(default_factory=dict)
    #: extension beyond the paper: store mixed content as serialized
    #: markup instead of flattened text, removing the "known
    #: transformation problem" of Section 1 at the cost of opaque
    #: (non-queryable) inline elements.  Default False = the paper's
    #: behaviour.
    mixed_as_markup: bool = False

    def hinted_type(self, xml_name: str) -> str | None:
        """The SQL type annotation for an element/attribute name."""
        return self.type_hints.get(xml_name)

    def text_type(self) -> str:
        if self.use_clob_for_text:
            return "CLOB"
        return f"VARCHAR2({self.text_length})"


@dataclass
class MappingPlan:
    """The complete plan for one DTD."""

    root: ElementPlan
    elements: dict[str, ElementPlan]
    config: MappingConfig
    schema_id: str | None = None
    #: table-stored elements in load order (children-before-parents
    #: for REF targets, parents-before-children for CHILD_TABLE)
    warnings: list[str] = field(default_factory=list)

    def element(self, name: str) -> ElementPlan | None:
        return self.elements.get(name)

    def table_stored_elements(self) -> list[ElementPlan]:
        return [plan for plan in self.elements.values()
                if plan.is_table_stored]

    def describe(self) -> str:
        """Readable summary used by examples and docs."""
        lines: list[str] = []
        for plan in self.elements.values():
            marks = []
            if plan.is_table_stored:
                marks.append(f"table={plan.table}")
            if plan.object_type:
                marks.append(f"type={plan.object_type}")
            if plan.recursive:
                marks.append("recursive")
            if plan.shared:
                marks.append("shared")
            lines.append(f"{plan.name} [{plan.kind.value}]"
                         + (" " + " ".join(marks) if marks else ""))
            for link in plan.links:
                lines.append(
                    f"  -> {link.child.name}: {link.storage.value}"
                    + (f" as {link.column}" if link.column else ""))
        return "\n".join(lines)
