"""Bulk-ingestion resilience: error taxonomy, retries, quarantine.

One stored XML document is a *cluster* of statements (the nested
INSERT of Section 4.2, extra INSERTs for ID targets, deferred IDREF
UPDATEs of Section 4.4, meta-table rows of Section 5), so corpus
loading needs machinery the paper's interactive tool never did:

* an **error taxonomy** — :func:`classify` splits failures into
  ``transient`` (connection-style faults, busy resources; worth a
  retry) and ``permanent`` (validity errors, constraint violations,
  dangling IDREFs; retrying cannot help);
* a **retry policy** — bounded attempts with exponential backoff.
  The sleep function is injected so tests and benchmarks never wait
  on a wall clock;
* a **quarantine report** — per-document outcomes with the ORA code,
  classification and attempt count, so a batch run can continue past
  bad documents and still account for every one of them.

:meth:`repro.core.XML2Oracle.store_many` drives these against the
transactional engine: one transaction around the batch, one savepoint
per document.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.ordb.errors import is_transient

#: Classification labels used throughout.
TRANSIENT = "transient"
PERMANENT = "permanent"


def classify(error: BaseException) -> str:
    """``transient`` or ``permanent`` (see module docstring)."""
    return TRANSIENT if is_transient(error) else PERMANENT


def error_code(error: BaseException) -> str:
    """The ORA code of an engine error, or the exception type name."""
    return getattr(error, "code", None) or type(error).__name__


@dataclass
class RetryPolicy:
    """Bounded retry with capped, jittered exponential backoff.

    ``sleep`` is the injected clock: pass a recorder in tests, a
    no-op in benchmarks.  ``delay(attempt)`` is the deterministic
    ceiling of the pause *after* the attempt-th failure (1-based):
    ``base_delay * multiplier**(attempt-1)`` capped at ``max_delay``.
    The actual sleep subtracts up to ``jitter`` (a fraction of the
    ceiling) drawn from a seedable per-policy RNG, de-synchronizing
    retriers that failed together — without jitter, sessions that
    collide on a lock all sleep the same backoff and collide again
    (the livelock storms this policy exists to break).  ``jitter=0``
    restores fully deterministic waits.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5
    seed: int | None = None
    sleep: Callable[[float], None] = time.sleep
    _rng: random.Random = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def delay(self, attempt: int) -> float:
        return min(self.base_delay * self.multiplier ** (attempt - 1),
                   self.max_delay)

    def jittered_delay(self, attempt: int) -> float:
        """One concrete pause: the ceiling minus a random slice."""
        ceiling = self.delay(attempt)
        if self.jitter <= 0.0 or ceiling <= 0.0:
            return ceiling
        return ceiling * (1.0 - self._rng.random() * self.jitter)

    def wait(self, attempt: int) -> None:
        self.sleep(self.jittered_delay(attempt))


#: A policy that never retries (permanent-only semantics).
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0,
                       sleep=lambda _seconds: None)


@dataclass
class DocumentOutcome:
    """What happened to one document of a batch."""

    index: int
    doc_name: str
    status: str  # 'stored' | 'quarantined'
    doc_id: int | None = None
    attempts: int = 1
    error: BaseException | None = None
    error_code: str = ""
    classification: str = ""

    @property
    def stored(self) -> bool:
        return self.status == "stored"

    def describe(self) -> str:
        if self.stored:
            retried = (f" after {self.attempts} attempts"
                       if self.attempts > 1 else "")
            return (f"[{self.index}] {self.doc_name}: stored as"
                    f" DocID {self.doc_id}{retried}")
        return (f"[{self.index}] {self.doc_name}: QUARANTINED"
                f" ({self.classification}, {self.error_code},"
                f" {self.attempts} attempt(s)) — {self.error}")


@dataclass
class IngestReport:
    """Per-document outcomes of one :meth:`store_many` call."""

    outcomes: list[DocumentOutcome] = field(default_factory=list)

    @property
    def stored(self) -> list[DocumentOutcome]:
        return [o for o in self.outcomes if o.stored]

    @property
    def quarantined(self) -> list[DocumentOutcome]:
        return [o for o in self.outcomes if not o.stored]

    @property
    def ok(self) -> bool:
        return not self.quarantined

    @property
    def doc_ids(self) -> list[int]:
        return [o.doc_id for o in self.stored if o.doc_id is not None]

    def describe(self) -> str:
        lines = [outcome.describe() for outcome in self.outcomes]
        lines.append(f"-- {len(self.stored)} stored,"
                     f" {len(self.quarantined)} quarantined")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-able summary (the CLI and benchmarks export this)."""
        return {
            "stored": len(self.stored),
            "quarantined": len(self.quarantined),
            "attempts": sum(o.attempts for o in self.outcomes),
            "outcomes": [
                {"index": o.index, "doc_name": o.doc_name,
                 "status": o.status, "doc_id": o.doc_id,
                 "attempts": o.attempts, "error_code": o.error_code,
                 "classification": o.classification}
                for o in self.outcomes
            ],
        }
