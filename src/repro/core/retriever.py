"""Reconstruction: turn stored rows back into an XML document.

The inverse of the loader, walking the same :func:`type_members` layout so
every constructor argument the loader wrote is read back into the DOM
node it came from.  What the mapping inherently loses — sibling order
across different element types behind REFs (Section 7 drawback),
flattened mixed content — is visible here and measured by the CLM3
round-trip benchmark.
"""

from __future__ import annotations

from repro.ordb.engine import Database
from repro.ordb.values import CollectionValue, ObjectValue, RefValue
from repro.relational.shredder import sql_quote
from repro.xmlkit.dom import Element, Text
from repro.xmlkit.parser import XMLParser
from .generator import type_members
from .plan import ElementKind, ElementPlan, MappingPlan, Storage


class Retriever:
    """Fetches documents stored under a mapping plan."""

    def __init__(self, db: Database, plan: MappingPlan):
        self.db = db
        self.plan = plan
        self._fragment_parser = XMLParser()

    # -- public API -------------------------------------------------------------

    def fetch(self, doc_id: int) -> Element:
        """Rebuild the document with the given id."""
        root_plan = self.plan.root
        row = self._row_by_id(root_plan, f"D{doc_id}")
        if row is None:
            raise LookupError(f"document {doc_id} is not stored")
        return self._element_from_object(root_plan, row)

    def fetch_by_row_id(self, plan_name: str, row_id: str) -> Element:
        """Rebuild a single stored element row (e.g. an ID target)."""
        plan = self.plan.element(plan_name)
        if plan is None or not plan.is_table_stored:
            raise LookupError(f"'{plan_name}' is not table-stored")
        row = self._row_by_id(plan, row_id)
        if row is None:
            raise LookupError(f"row {row_id} not found in {plan.table}")
        return self._element_from_object(plan, row)

    # -- row access --------------------------------------------------------------

    def _row_by_id(self, plan: ElementPlan,
                   row_id: str) -> ObjectValue | None:
        result = self.db.execute(
            f"SELECT VALUE(t) FROM {plan.table} t"
            f" WHERE t.{plan.id_column} = {sql_quote(row_id)}")
        value = result.scalar()
        return value if isinstance(value, ObjectValue) else None

    def _child_rows(self, child: ElementPlan, ref_column: str,
                    parent_plan: ElementPlan,
                    parent_row_id: str) -> list[ObjectValue]:
        """Rows of a CHILD_TABLE child pointing back at one parent."""
        result = self.db.execute(
            f"SELECT VALUE(c), c.{child.id_column} FROM {child.table} c"
            f" WHERE c.{ref_column}.{parent_plan.id_column} ="
            f" {sql_quote(parent_row_id)}"
            f" ORDER BY 2")
        return [row[0] for row in result.rows
                if isinstance(row[0], ObjectValue)]

    # -- reconstruction ---------------------------------------------------------------

    def _element_from_object(self, plan: ElementPlan,
                             value: ObjectValue) -> Element:
        element = Element(plan.name)
        row_id: str | None = None
        for member in type_members(plan, self.plan):
            if member.kind == "parentref":
                continue
            stored = value.get(member.column)
            if member.kind == "id":
                row_id = stored
            elif member.kind == "text":
                self._restore_text(plan, element, stored)
            elif member.kind == "xmlattr":
                self._restore_attribute(element, member.attribute,
                                        stored)
            elif member.kind == "attrlist":
                if isinstance(stored, ObjectValue):
                    for attribute in plan.attr_list.attributes:
                        self._restore_attribute(
                            element, attribute,
                            stored.get(attribute.db_name))
            else:
                self._restore_link(element, member.link, stored)
        for link in plan.links:
            if link.storage is Storage.CHILD_TABLE and row_id:
                for child_value in self._child_rows(
                        link.child, link.column, plan, row_id):
                    element.append(self._element_from_object(
                        link.child, child_value))
        return element

    def _restore_text(self, plan: ElementPlan, element: Element,
                      stored: object) -> None:
        if stored is None or stored == "":
            return
        if self._stores_markup(plan):
            for node in self._fragment_parser.parse_fragment(str(stored)):
                element.append(node)
        else:
            element.append(Text(str(stored)))

    def _stores_markup(self, plan: ElementPlan) -> bool:
        if plan.kind is ElementKind.ANY:
            return True
        return (plan.kind is ElementKind.MIXED
                and self.plan.config.mixed_as_markup)

    def _restore_attribute(self, element: Element, attribute,
                           stored: object) -> None:
        if stored is None:
            return
        if isinstance(stored, RefValue):
            # an IDREF column: recover the original XML ID value from
            # the referenced row
            target_plan = self.plan.element(attribute.ref_target)
            target = self.db.dereference(stored)
            if target is None or target_plan is None:
                return
            id_value = self._id_value_of(target_plan, target)
            if id_value is not None:
                element.set(attribute.xml_name, str(id_value))
            return
        element.set(attribute.xml_name, str(stored))

    def _id_value_of(self, plan: ElementPlan,
                     value: ObjectValue) -> object | None:
        pool = (plan.attr_list.attributes if plan.attr_list
                else plan.attributes)
        id_attribute = next((a for a in pool if a.is_id), None)
        if id_attribute is None:
            return None
        if plan.attr_list is not None:
            attr_list = value.get(plan.attr_list.column)
            if isinstance(attr_list, ObjectValue):
                return attr_list.get(id_attribute.db_name)
            return None
        return value.get(id_attribute.db_name)

    def _restore_link(self, element: Element, link,
                      stored: object) -> None:
        child = link.child
        if stored is None:
            return
        if link.storage is Storage.SCALAR_COLUMN:
            element.append(self._scalar_element(child, stored))
        elif link.storage is Storage.SCALAR_COLLECTION:
            if isinstance(stored, CollectionValue):
                for item in stored:
                    if item is not None:
                        element.append(self._scalar_element(child, item))
        elif link.storage is Storage.OBJECT_COLUMN:
            if isinstance(stored, ObjectValue):
                element.append(self._element_from_object(child, stored))
        elif link.storage is Storage.OBJECT_COLLECTION:
            if isinstance(stored, CollectionValue):
                for item in stored:
                    if isinstance(item, ObjectValue):
                        element.append(self._element_from_object(child,
                                                                 item))
        elif link.storage is Storage.REF_COLUMN:
            if isinstance(stored, RefValue):
                value = self.db.dereference(stored)
                if isinstance(value, ObjectValue):
                    element.append(self._element_from_object(child,
                                                             value))
        else:
            assert link.storage is Storage.REF_COLLECTION
            if isinstance(stored, CollectionValue):
                for item in stored:
                    if isinstance(item, RefValue):
                        value = self.db.dereference(item)
                        if isinstance(value, ObjectValue):
                            element.append(self._element_from_object(
                                child, value))

    def _scalar_element(self, plan: ElementPlan,
                        stored: object) -> Element:
        element = Element(plan.name)
        if plan.kind is ElementKind.EMPTY:
            return element  # presence flag only
        if self._stores_markup(plan):
            for node in self._fragment_parser.parse_fragment(str(stored)):
                element.append(node)
            return element
        if stored != "":
            element.append(Text(str(stored)))
        return element
