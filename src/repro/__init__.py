"""Reproduction of Kudrass & Conrad, "Management of XML Documents in
Object-Relational Databases" (EDBT 2002 Workshops, LNCS 2490).

Package layout (see DESIGN.md for the full inventory):

* :mod:`repro.xmlkit` - XML 1.0 parser, DOM, entities, serializer.
* :mod:`repro.dtd` - DTD parser, content models, validator, DTD tree.
* :mod:`repro.ordb` - embedded object-relational DBMS (the Oracle
  8i/9i stand-in): object/collection/REF types, object tables and
  views, a SQL dialect parser and executor.
* :mod:`repro.relational` - generic relational baselines (edge table,
  attribute tables, DTD inlining).
* :mod:`repro.core` - the paper's contribution: the XML2Oracle
  mapping system (analysis, generation, loading, meta-data,
  retrieval, path queries, object views, round-trip fidelity).
* :mod:`repro.workloads` - deterministic document/DTD generators.

Quick start:

>>> from repro import XML2Oracle
>>> from repro.workloads import SAMPLE_DOCUMENT
>>> from repro.xmlkit import parse
>>> document = parse(SAMPLE_DOCUMENT)
>>> tool = XML2Oracle()
>>> _ = tool.register_schema(document.doctype.dtd)
>>> stored = tool.store(document)
>>> stored.load_result.insert_count
1
>>> tool.query("/University/Student/Course/Professor/PName").rows
[('Kudrass',), ('Jaeger',)]
"""

from .core import MappingConfig, XML2Oracle
from .ordb import CompatibilityMode, Database

__version__ = "1.0.0"

__all__ = [
    "CompatibilityMode",
    "Database",
    "MappingConfig",
    "XML2Oracle",
    "__version__",
]
