"""One client connection to a :class:`~repro.server.DatabaseServer`.

A :class:`RemoteConnection` is the client half of the wire protocol:
it performs the magic handshake, then exchanges one request frame for
one response frame, synchronously.  Every network failure — refused
connect, timeout, EOF mid-frame — surfaces as the transient
:class:`~repro.ordb.errors.ConnectionLost`, and every server-side
failure is rebuilt as its original error class (see
:mod:`repro.server.wire`), so callers make retry decisions with
:func:`~repro.ordb.errors.is_transient` exactly as they would against
the embedded engine.
"""

from __future__ import annotations

import socket
import time

from ..ordb.errors import ConnectionLost, ProtocolError
from ..ordb.results import Result
from ..server import wire


def parse_url(url: str) -> tuple[str, int]:
    """``ordb://host:port`` (or bare ``host:port``) -> (host, port)."""
    trimmed = url.strip()
    for prefix in ("ordb://", "tcp://"):
        if trimmed.startswith(prefix):
            trimmed = trimmed[len(prefix):]
            break
    trimmed = trimmed.rstrip("/")
    host, separator, port = trimmed.rpartition(":")
    if not separator or not port.isdigit():
        raise ValueError(
            f"expected ordb://host:port, got {url!r}")
    return host or "127.0.0.1", int(port)


class RemoteConnection:
    """A live, handshaken connection speaking the RNET protocol."""

    def __init__(self, host: str, port: int,
                 connect_timeout: float = 5.0,
                 request_timeout: float = 30.0):
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.closed = False
        #: when the connection was opened (pool recycling keys on it)
        self.opened_at = time.monotonic()
        #: transaction state the server piggybacks on every execute
        #: response ({"active", "isolation", "read_only",
        #: "snapshot_ts"})
        self.txn_status: dict = {
            "active": False, "isolation": "READ COMMITTED",
            "read_only": False, "snapshot_ts": None}
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout)
            self._sock.settimeout(request_timeout)
            wire.send_magic(self._sock)
            wire.expect_magic(self._sock)
        except ProtocolError:
            self.close()
            raise
        except (OSError, socket.timeout) as exc:
            self.close()
            raise ConnectionLost(
                f"cannot reach server at {host}:{port}"
                f" ({exc})") from None

    @property
    def age(self) -> float:
        return time.monotonic() - self.opened_at

    # -- the request/response cycle ----------------------------------------------

    def request(self, op: str, **fields) -> dict:
        """Send one request, await one response; raise its error."""
        if self.closed:
            raise ConnectionLost(
                "connection is closed; acquire a fresh one")
        try:
            wire.send_message(self._sock, {"op": op, **fields})
            response = wire.recv_message(self._sock)
        except socket.timeout:
            # the request may or may not have executed; the link is
            # unusable either way
            self.close()
            raise ConnectionLost(
                f"no response to {op!r} within"
                f" {self.request_timeout:.3f}s") from None
        except ConnectionLost:
            self.close()
            raise
        except ProtocolError:
            self.close()
            raise
        except OSError as exc:
            self.close()
            raise ConnectionLost(
                f"connection to {self.host}:{self.port} failed"
                f" during {op!r} ({exc})") from None
        if not response.get("ok"):
            raise wire.decode_error(response.get("error", {}))
        return response

    # -- operations ---------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request("ping").get("pong"))

    def execute(self, sql: str) -> Result:
        """Run one SQL statement in this connection's server session."""
        response = self.request("execute", sql=sql)
        txn = response.get("txn")
        if isinstance(txn, dict):
            # piggybacked transaction state: isolation level, access
            # mode and pinned snapshot of the server-side session
            self.txn_status = txn
        return wire.decode_result(response["result"])

    @property
    def isolation_level(self) -> str:
        """Server-reported isolation of this connection's session,
        as of the last ``execute`` round trip."""
        return str(self.txn_status.get("isolation", "READ COMMITTED"))

    def begin(self) -> None:
        self.execute("BEGIN")

    def commit(self) -> None:
        self.execute("COMMIT")

    def rollback(self) -> None:
        self.execute("ROLLBACK")

    def set_transaction(self, read_only: bool = False,
                        isolation: str | None = None) -> None:
        """``SET TRANSACTION`` on the server session (must be its
        first statement, like Oracle)."""
        if read_only:
            self.execute("SET TRANSACTION READ ONLY")
        if isolation is not None:
            self.execute(
                f"SET TRANSACTION ISOLATION LEVEL {isolation}")

    def register_schema(self, dtd: str | None = None,
                        root: str | None = None,
                        document: str | None = None) -> dict:
        """Install (or find, by root element) a document schema.

        Either pass the DTD text, or a *document* whose internal
        subset carries it (the sample also feeds the server's
        IDREF-target inference)."""
        return self.request("register_schema", dtd=dtd, root=root,
                            document=document)

    def store(self, document: str, root: str | None = None,
              doc_name: str = "", url: str = "") -> dict:
        """Ship one XML document; returns ``{"doc_id": ...}`` data."""
        return self.request("store", document=document, root=root,
                            doc_name=doc_name, url=url)

    def query(self, path: str, predicate: tuple | None = None,
              doc_id: int | None = None,
              select: str | None = None) -> Result:
        """Run a path query server-side; rows come back composite."""
        response = self.request(
            "query", path=path,
            predicate=list(predicate) if predicate else None,
            doc_id=doc_id, select=select)
        return wire.decode_result(response["result"])

    def fetch(self, doc_id: int) -> str:
        """Reconstruct a stored document's XML text."""
        return str(self.request("fetch", doc_id=doc_id)["text"])

    def server_stats(self) -> dict:
        return dict(self.request("stats")["stats"])

    def shutdown_server(self) -> None:
        """Ask the server to drain (if it allows remote shutdown)."""
        self.request("shutdown")

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        sock = getattr(self, "_sock", None)
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close best-effort
                pass

    def __enter__(self) -> "RemoteConnection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"<RemoteConnection {self.host}:{self.port} ({state})>"
