"""Client-side connection pooling with bounded overflow and retry.

A :class:`ConnectionPool` keeps up to ``size`` idle connections warm
and lends them out; under burst it opens up to ``max_overflow`` extra
connections that are closed (not pooled) on return.  When everything
is checked out, :meth:`acquire` waits at most ``acquire_timeout``
seconds and then raises the transient
:class:`~repro.ordb.errors.PoolTimeout` — the client-side twin of the
server's admission control: bounded waiting, then an honest,
retryable "no".

``recycle`` (seconds) retires idle connections older than the limit
before handing them out, the standard defense against silently
half-dead sockets on long-lived pools.

:meth:`run` is the robust entry point: it acquires, calls, releases,
and retries transient failures — lost connections, shed requests,
statement timeouts — with the capped, jittered exponential backoff of
:class:`~repro.core.ingest.RetryPolicy`.  Connections that died
mid-call are discarded, so one bad socket never poisons the pool.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Callable

from ..core.ingest import RetryPolicy
from ..ordb.errors import ConnectionLost, PoolTimeout, is_transient
from .connection import RemoteConnection, parse_url


class ConnectionPool:
    """A bounded pool of :class:`RemoteConnection` objects."""

    def __init__(self, url: str, size: int = 4, max_overflow: int = 2,
                 acquire_timeout: float = 2.0,
                 recycle: float | None = None,
                 connect_timeout: float = 5.0,
                 request_timeout: float = 30.0):
        self.host, self.port = parse_url(url)
        self.size = max(1, size)
        self.max_overflow = max(0, max_overflow)
        self.acquire_timeout = acquire_timeout
        self.recycle = recycle
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self._returned = threading.Condition()
        self._idle: list[RemoteConnection] = []
        #: live connections, checked out or idle (bounds creation)
        self._total = 0
        self.closed = False
        #: monotonically increasing counters, never reset
        self.stats = {"created": 0, "acquired": 0, "recycled": 0,
                      "discarded": 0, "overflow": 0,
                      "acquire_timeouts": 0, "retries": 0}

    @property
    def max_size(self) -> int:
        return self.size + self.max_overflow

    # -- checkout / checkin -------------------------------------------------------

    def acquire(self) -> RemoteConnection:
        """A healthy connection, within ``acquire_timeout`` or never.

        Raises :class:`PoolTimeout` (transient) when the pool and its
        overflow are exhausted for the whole wait.
        """
        deadline = time.monotonic() + self.acquire_timeout
        while True:
            with self._returned:
                if self.closed:
                    raise PoolTimeout("connection pool is closed")
                while self._idle:
                    connection = self._idle.pop()
                    if (self.recycle is not None
                            and connection.age > self.recycle):
                        self.stats["recycled"] += 1
                        self._total -= 1
                        connection.close()
                        continue
                    self.stats["acquired"] += 1
                    return connection
                if self._total < self.max_size:
                    self._total += 1
                    if self._total > self.size:
                        self.stats["overflow"] += 1
                    break  # open a fresh one, outside the lock
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.stats["acquire_timeouts"] += 1
                    raise PoolTimeout(
                        f"no connection available within"
                        f" {self.acquire_timeout:.3f}s"
                        f" ({self.max_size} in use)")
                self._returned.wait(remaining)
                continue  # re-check idle list after a return
        try:
            connection = RemoteConnection(
                self.host, self.port,
                connect_timeout=self.connect_timeout,
                request_timeout=self.request_timeout)
        except BaseException:
            with self._returned:
                self._total -= 1
                self._returned.notify()
            raise
        self.stats["created"] += 1
        self.stats["acquired"] += 1
        return connection

    def release(self, connection: RemoteConnection,
                discard: bool = False) -> None:
        """Return a connection; dead or surplus ones are closed."""
        with self._returned:
            keep = (not discard and not connection.closed
                    and not self.closed
                    and len(self._idle) < self.size)
            if keep:
                self._idle.append(connection)
            else:
                self._total -= 1
                self.stats["discarded"] += 1
                connection.close()
            self._returned.notify()

    @contextlib.contextmanager
    def connection(self):
        """``with pool.connection() as conn:`` — checkout scope.

        A connection that died inside the block (its ``closed`` flag
        is set by every fatal network error) is discarded on exit.
        """
        connection = self.acquire()
        try:
            yield connection
        finally:
            self.release(connection, discard=connection.closed)

    # -- the retrying entry point -------------------------------------------------

    def run(self, call: Callable[[RemoteConnection], object],
            retry: RetryPolicy | None = None) -> object:
        """Run *call* with a pooled connection, retrying transients.

        Each attempt uses a freshly acquired connection, so a retry
        after :class:`ConnectionLost` lands on a different socket.
        Permanent errors and exhausted policies propagate unchanged.
        """
        policy = retry or RetryPolicy()
        attempt = 0
        while True:
            attempt += 1
            try:
                with self.connection() as connection:
                    return call(connection)
            except Exception as error:
                if (not is_transient(error)
                        or attempt >= policy.max_attempts):
                    raise
                self.stats["retries"] += 1
                policy.wait(attempt)

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Close every idle connection and refuse new checkouts."""
        with self._returned:
            self.closed = True
            idle, self._idle = self._idle, []
            self._total -= len(idle)
            self._returned.notify_all()
        for connection in idle:
            connection.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._returned:
            return (f"<ConnectionPool {self.host}:{self.port}"
                    f" {len(self._idle)} idle / {self._total} live"
                    f" (max {self.max_size})>")


def call_with_retry(call: Callable[[], object],
                    retry: RetryPolicy | None = None,
                    retryable: Callable[[BaseException], bool]
                    = is_transient) -> object:
    """Retry a bare callable on transient errors (no pool needed)."""
    policy = retry or RetryPolicy()
    attempt = 0
    while True:
        attempt += 1
        try:
            return call()
        except Exception as error:
            if not retryable(error) or attempt >= policy.max_attempts:
                raise
            policy.wait(attempt)


__all__ = ["ConnectionPool", "call_with_retry", "ConnectionLost"]
