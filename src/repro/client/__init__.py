"""Client side of the network front end: connections, pool, retry.

>>> from repro.server import DatabaseServer
>>> from repro.client import ConnectionPool, connect
>>> with DatabaseServer() as server:
...     with connect(server.url) as conn:
...         _ = conn.execute("CREATE TABLE T(a NUMBER)")
...     with ConnectionPool(server.url, size=2) as pool:
...         pool.run(lambda c: c.execute(
...             "INSERT INTO T VALUES(7)").rowcount)
1
"""

from __future__ import annotations

from .connection import RemoteConnection, parse_url
from .pool import ConnectionPool, call_with_retry


def connect(url: str, connect_timeout: float = 5.0,
            request_timeout: float = 30.0) -> RemoteConnection:
    """Open one connection to ``ordb://host:port``."""
    host, port = parse_url(url)
    return RemoteConnection(host, port,
                            connect_timeout=connect_timeout,
                            request_timeout=request_timeout)


__all__ = [
    "ConnectionPool",
    "RemoteConnection",
    "call_with_retry",
    "connect",
    "parse_url",
]
