"""Metrics: counters, gauges and fixed-bucket histograms.

The registry holds every instrument by dotted name and exports the
whole set as JSON (machines) or a plain-text page (humans).  Units are
part of the instrument, not the name, so ``db.statement_seconds`` is a
histogram with ``unit="s"`` rather than a naming convention.

>>> registry = MetricsRegistry()
>>> registry.counter("db.statements").inc()
>>> registry.counter("db.statements").inc(2)
>>> registry.counter("db.statements").value
3
>>> registry.histogram("db.statement_seconds", unit="s").observe(0.004)
>>> registry.histogram("db.statement_seconds").count
1
"""

from __future__ import annotations

import bisect
import json
import math
import threading
from dataclasses import dataclass, field

#: Default latency buckets (seconds): 100µs .. 5s, log-ish spacing.
DEFAULT_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


@dataclass
class Counter:
    """A monotonically increasing count (resettable for tests).

    Updates are atomic: server threads, pool workers and per-session
    handlers all bump shared instruments concurrently, and Python's
    ``+=`` on an attribute is a read-modify-write that can lose
    increments without the lock.
    """

    name: str
    unit: str = ""
    help: str = ""
    value: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    kind = "counter"

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0

    def as_dict(self) -> dict:
        return {"kind": self.kind, "unit": self.unit, "value": self.value}


@dataclass
class Gauge:
    """A value that goes up and down (e.g. open transactions).

    ``high_water`` remembers the largest value ever set — the figure
    capacity questions actually need ("how deep did the queue get?"),
    which a point-in-time sample always misses.
    """

    name: str
    unit: str = ""
    help: str = ""
    value: float = 0.0
    high_water: float = 0.0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    kind = "gauge"

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            self.high_water = max(self.high_water, value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount
            self.high_water = max(self.high_water, self.value)

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def reset(self) -> None:
        with self._lock:
            self.value = 0.0
            self.high_water = 0.0

    def as_dict(self) -> dict:
        return {"kind": self.kind, "unit": self.unit,
                "value": self.value, "high_water": self.high_water}


@dataclass
class Histogram:
    """Fixed-bucket histogram with cumulative-style accounting.

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches
    the overflow.  ``bucket_counts[i]`` counts observations with
    ``value <= buckets[i]`` exclusive of earlier buckets (i.e. plain,
    not cumulative, per-bucket counts); :meth:`cumulative` derives the
    Prometheus-style running totals.
    """

    name: str
    unit: str = ""
    help: str = ""
    buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    bucket_counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    kind = "histogram"

    def __post_init__(self) -> None:
        if tuple(self.buckets) != tuple(sorted(self.buckets)):
            raise ValueError("histogram buckets must be sorted")
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        with self._lock:
            self.bucket_counts[
                bisect.bisect_left(self.buckets, value)] += 1
            self.count += 1
            self.total += value
            self.minimum = min(self.minimum, value)
            self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative(self) -> list[int]:
        """Running totals per bucket, ending with ``count``."""
        totals, running = [], 0
        for bucket_count in self.bucket_counts:
            running += bucket_count
            totals.append(running)
        return totals

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the q-quantile (0 < q <= 1)."""
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if self.count == 0:
            return 0.0
        rank = math.ceil(q * self.count)
        for index, running in enumerate(self.cumulative()):
            if running >= rank:
                if index < len(self.buckets):
                    return self.buckets[index]
                return self.maximum
        return self.maximum  # pragma: no cover - cumulative ends at count

    def reset(self) -> None:
        with self._lock:
            self.bucket_counts = [0] * (len(self.buckets) + 1)
            self.count = 0
            self.total = 0.0
            self.minimum = math.inf
            self.maximum = -math.inf

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "unit": self.unit,
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
            "buckets": {
                **{str(bound): cum for bound, cum
                   in zip(self.buckets, self.cumulative())},
                "+Inf": self.count,
            },
        }


class MetricsRegistry:
    """All instruments of one observed system, by dotted name."""

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        # two threads asking for the same not-yet-registered name must
        # get the same instrument, not two (one of which loses every
        # update the other records)
        self._create_lock = threading.Lock()

    def _get_or_create(self, name: str, factory, kind: str):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._create_lock:
                instrument = self._instruments.get(name)
                if instrument is None:
                    instrument = factory()
                    self._instruments[name] = instrument
        if instrument.kind != kind:
            raise TypeError(
                f"metric {name!r} is a {instrument.kind},"
                f" not a {kind}")
        return instrument

    def counter(self, name: str, unit: str = "",
                help: str = "") -> Counter:
        return self._get_or_create(
            name, lambda: Counter(name, unit, help), "counter")

    def gauge(self, name: str, unit: str = "", help: str = "") -> Gauge:
        return self._get_or_create(
            name, lambda: Gauge(name, unit, help), "gauge")

    def histogram(self, name: str, unit: str = "", help: str = "",
                  buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        return self._get_or_create(
            name,
            lambda: Histogram(name, unit, help, buckets), "histogram")

    def get(self, name: str):
        """The named instrument, or None."""
        return self._instruments.get(name)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def reset(self) -> None:
        """Zero every instrument (the instruments stay registered)."""
        for instrument in self._instruments.values():
            instrument.reset()

    # -- export -------------------------------------------------------------------

    def as_dict(self) -> dict:
        return {name: self._instruments[name].as_dict()
                for name in self.names()}

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent,
                          default=_json_default)

    def render_text(self) -> str:
        """A plain-text metrics page, one instrument per block."""
        lines: list[str] = []
        for name in self.names():
            instrument = self._instruments[name]
            unit = f" ({instrument.unit})" if instrument.unit else ""
            if isinstance(instrument, Histogram):
                lines.append(
                    f"{name}{unit}: count={instrument.count}"
                    f" sum={instrument.total:.6f}"
                    f" mean={instrument.mean:.6f}"
                    f" p95<={instrument.quantile(0.95):.6g}")
            else:
                lines.append(f"{name}{unit}: {instrument.value}")
        return "\n".join(lines)


def _json_default(value):
    if value is math.inf or value is -math.inf:
        return None
    return str(value)  # pragma: no cover - defensive
