"""The slow-query log: statements slower than a threshold.

A bounded ring of :class:`SlowQuery` entries; the engine appends one
whenever a statement's wall time crosses ``threshold`` seconds (and
observability is enabled).  ``threshold=None`` disables the log even
while tracing/metrics stay on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class SlowQuery:
    """One over-threshold statement."""

    sql: str
    seconds: float
    rowcount: int
    sequence: int

    def describe(self) -> str:
        return (f"#{self.sequence} {self.seconds * 1000.0:.3f}ms"
                f" rows={self.rowcount} :: {self.sql}")


class SlowQueryLog:
    """Keeps the most recent ``capacity`` over-threshold statements."""

    def __init__(self, threshold: float | None = None,
                 capacity: int = 100, max_sql_length: int = 500):
        self.threshold = threshold
        self.capacity = capacity
        self.max_sql_length = max_sql_length
        self.entries: deque[SlowQuery] = deque(maxlen=capacity)
        self.total_seen = 0

    @property
    def enabled(self) -> bool:
        return self.threshold is not None

    def record(self, sql: str, seconds: float, rowcount: int = 0) -> bool:
        """Log the statement if it crossed the threshold."""
        if self.threshold is None or seconds < self.threshold:
            return False
        self.total_seen += 1
        if len(sql) > self.max_sql_length:
            sql = sql[:self.max_sql_length - 3] + "..."
        self.entries.append(
            SlowQuery(sql, seconds, rowcount, self.total_seen))
        return True

    def clear(self) -> None:
        self.entries.clear()
        self.total_seen = 0

    def as_dicts(self) -> list[dict]:
        return [
            {"sequence": entry.sequence, "sql": entry.sql,
             "seconds": entry.seconds, "rowcount": entry.rowcount}
            for entry in self.entries
        ]

    def render_text(self) -> str:
        if not self.entries:
            return "slow-query log: empty"
        lines = [f"slow-query log ({self.total_seen} over"
                 f" {self.threshold * 1000.0:.1f}ms, newest last):"]
        lines.extend(entry.describe() for entry in self.entries)
        return "\n".join(lines)
