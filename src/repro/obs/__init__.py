"""Observability: tracing, metrics, slow-query log (see
``docs/observability.md``).

One :class:`Observability` object is shared by an engine and the
facade driving it.  It is **disabled by default** — the tracer is the
no-op :data:`~repro.obs.tracing.NULL_TRACER`, the engine's hot path
pays a single attribute check, and the paper-reproduction benchmarks
measure the same code they always did.  Enabled, the same object
collects a span tree per pipeline run, a metrics registry and a
slow-query log:

>>> from repro.obs import Observability
>>> obs = Observability(enabled=True)
>>> with obs.phase("parse"):
...     pass
>>> obs.metrics.histogram("phase.parse_seconds").count
1
>>> obs.tracer.last_root.name
'parse'
"""

from __future__ import annotations

import time

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .slowlog import SlowQuery, SlowQueryLog
from .tracing import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    format_seconds,
)


class _PhaseTimer:
    """Context manager: one span plus one ``phase.*_seconds`` sample."""

    __slots__ = ("_obs", "_span", "_name", "_start")

    def __init__(self, obs: "Observability", name: str, attributes: dict):
        self._obs = obs
        self._name = name
        self._span = obs.tracer.span(name, **attributes)

    def __enter__(self):
        self._start = self._obs.clock()
        return self._span.__enter__()

    def __exit__(self, exc_type, exc, tb):
        elapsed = self._obs.clock() - self._start
        self._obs.metrics.histogram(
            f"phase.{self._name}_seconds", unit="s").observe(elapsed)
        return self._span.__exit__(exc_type, exc, tb)


class _NullPhase:
    """Shared no-op stand-in for :meth:`Observability.phase`."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return None


_NULL_PHASE = _NullPhase()


class Observability:
    """Tracer + metrics + slow-query log behind one enable switch."""

    def __init__(self, enabled: bool = False,
                 slow_query_threshold: float | None = None,
                 clock=time.perf_counter):
        self.clock = clock
        self.metrics = MetricsRegistry()
        self.slow_log = SlowQueryLog(threshold=slow_query_threshold)
        self.tracer: Tracer | NullTracer = NULL_TRACER
        self.enabled = False
        if enabled:
            self.enable()

    def enable(self) -> "Observability":
        """Switch collection on (idempotent); keeps prior data."""
        if not self.enabled:
            self.tracer = Tracer(self.clock)
            self.enabled = True
        return self

    def disable(self) -> "Observability":
        """Back to the zero-cost path; collected data stays readable."""
        if self.enabled:
            collected = self.tracer
            self.tracer = NULL_TRACER
            self.enabled = False
            # keep the spans reachable for post-mortem rendering
            self._last_tracer = collected
        return self

    def phase(self, name: str, **attributes):
        """Span *and* latency histogram for one pipeline phase.

        The sample lands in the ``phase.<name>_seconds`` histogram;
        the span nests under whatever span is currently open.
        """
        if not self.enabled:
            return _NULL_PHASE
        attributes = {key: value for key, value in attributes.items()
                      if value is not None}
        return _PhaseTimer(self, name, attributes)

    # -- export ------------------------------------------------------------------

    def export(self) -> dict:
        """Everything collected, as one JSON-able dict."""
        payload: dict = {"metrics": self.metrics.as_dict()}
        if self.slow_log.enabled:
            payload["slow_queries"] = self.slow_log.as_dicts()
        return payload

    def render_text(self) -> str:
        blocks = [self.metrics.render_text()]
        if self.slow_log.enabled:
            blocks.append(self.slow_log.render_text())
        return "\n\n".join(block for block in blocks if block)

    def reset(self) -> None:
        self.metrics.reset()
        self.slow_log.clear()
        self.tracer.reset()


__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Observability",
    "SlowQuery",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "format_seconds",
]
