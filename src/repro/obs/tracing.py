"""Hierarchical tracing: span trees over the storage pipeline.

A :class:`Tracer` records *spans* — named, timed scopes that nest.
The facade opens one span per pipeline phase (``parse`` → ``shred`` →
``ddl`` → ``insert_gen`` → ``execute`` → ``commit``), the engine one
per executed statement, so a traced ingest renders as a tree of
phases with per-phase latencies:

>>> tracer = Tracer(clock=_StepClock(0.001))
>>> with tracer.span("store", doc="a.xml"):
...     with tracer.span("parse"):
...         pass
...     with tracer.span("execute"):
...         pass
>>> print(tracer.render())  # doctest: +ELLIPSIS
store ... doc=a.xml
  parse ...
  execute ...

Disabled tracing must cost nothing on the hot path, so the default
tracer on every engine is :data:`NULL_TRACER`: its :meth:`span`
returns one shared no-op context manager, allocates nothing and keeps
no state.  Code guards bigger work with ``tracer.enabled``.
"""

from __future__ import annotations

import threading
import time


class Span:
    """One named, timed scope; usable as a context manager."""

    __slots__ = ("name", "attributes", "children", "elapsed", "_tracer",
                 "_start")

    def __init__(self, name: str, tracer: "Tracer",
                 attributes: dict | None = None):
        self.name = name
        self.attributes = attributes or {}
        self.children: list[Span] = []
        self.elapsed: float | None = None
        self._tracer = tracer
        self._start = 0.0

    def set(self, **attributes) -> "Span":
        """Attach (or overwrite) attributes on the span."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._start = self._tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = self._tracer.clock() - self._start
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)

    # -- rendering ---------------------------------------------------------------

    def render(self, indent: int = 0) -> str:
        pieces = [f"{'  ' * indent}{self.name} "
                  f"{format_seconds(self.elapsed)}"]
        if self.attributes:
            pieces.append(" ".join(
                f"{key}={value}"
                for key, value in self.attributes.items()))
        lines = ["  ".join(pieces)]
        lines.extend(child.render(indent + 1) for child in self.children)
        return "\n".join(lines)

    def find(self, name: str) -> "Span | None":
        """Depth-first lookup of a descendant (or self) by name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Span {self.name!r} {format_seconds(self.elapsed)}"
                f" children={len(self.children)}>")


def format_seconds(elapsed: float | None) -> str:
    """``1.234ms``-style latency formatting (``...`` while open)."""
    if elapsed is None:
        return "..."
    if elapsed >= 1.0:
        return f"{elapsed:.3f}s"
    return f"{elapsed * 1000.0:.3f}ms"


class Tracer:
    """Collects span trees.  One tracer per observed pipeline.

    The open-span stack is thread-local: concurrent sessions each
    nest their own spans instead of attaching children to whatever
    span another thread happens to have open.  The shared ``roots``
    list (appended under a lock) still collects every thread's trees.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self.clock = clock
        self.roots: list[Span] = []
        self._local = threading.local()
        self._roots_lock = threading.Lock()

    @property
    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- span lifecycle -----------------------------------------------------------

    def span(self, name: str, **attributes) -> Span:
        """A new span; use as ``with tracer.span("parse"): ...``."""
        return Span(name, self, attributes)

    def _push(self, span: Span) -> None:
        stack = self._stack
        if stack:
            stack[-1].children.append(span)
        else:
            with self._roots_lock:
                self.roots.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack
        # tolerate exits out of order rather than corrupting the tree
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()

    @property
    def current(self) -> Span | None:
        """The innermost open span of the calling thread, if any."""
        stack = self._stack
        return stack[-1] if stack else None

    @property
    def last_root(self) -> Span | None:
        return self.roots[-1] if self.roots else None

    def reset(self) -> None:
        with self._roots_lock:
            self.roots = []
        self._local = threading.local()

    # -- rendering ---------------------------------------------------------------

    def render(self) -> str:
        """The collected span trees, one indented block per root."""
        return "\n".join(root.render() for root in self.roots)


class _NullSpan:
    """The shared do-nothing span returned by :class:`NullTracer`."""

    __slots__ = ()
    name = ""
    elapsed = None
    children: list = []
    attributes: dict = {}

    def set(self, **attributes) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def render(self, indent: int = 0) -> str:
        return ""

    def find(self, name: str) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a cheap no-op."""

    enabled = False
    roots: list = []
    current = None
    last_root = None

    def __init__(self, clock=time.perf_counter):
        self.clock = clock

    def span(self, name: str, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def reset(self) -> None:
        return None

    def render(self) -> str:
        return ""


#: The process-wide disabled tracer (stateless, safe to share).
NULL_TRACER = NullTracer()


class _StepClock:
    """Deterministic clock for doctests/tests: advances per call."""

    def __init__(self, step: float = 1.0, start: float = 0.0):
        self.step = step
        self.now = start

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value
