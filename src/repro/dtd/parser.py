"""Standalone, non-validating DTD parser.

This reproduces the role of the Wutka DTD parser in Fig. 1 of the
paper: it reads a document type definition (an internal subset or an
external subset file) and produces the :class:`repro.dtd.model.DTD`
structure from which XML2Oracle derives the database schema.

Supported constructs: ELEMENT, ATTLIST, ENTITY (general and parameter,
internal and external, NDATA), NOTATION, comments, processing
instructions, parameter-entity references and INCLUDE/IGNORE
conditional sections.  External identifiers are recorded but never
fetched (the environment is offline); external parameter entities are
ignored with their declarations preserved.
"""

from __future__ import annotations

import re

from repro.xmlkit.entities import (
    EntityDefinition,
    EntityTable,
    expand_char_reference,
)
from repro.xmlkit.errors import EntityError, XMLSyntaxError
from repro.xmlkit.lexer import Scanner
from .content import (
    ChoiceParticle,
    ContentSpec,
    NameParticle,
    Occurrence,
    Particle,
    SequenceParticle,
)
from .model import (
    AttributeDecl,
    AttributeType,
    DTD,
    DefaultKind,
    ElementDecl,
    NotationDecl,
)

_PE_REFERENCE = re.compile(r"%([A-Za-z_:][-\w.:]*);")
_OCCURRENCE_CHARS = {"?": Occurrence.OPTIONAL,
                     "*": Occurrence.ZERO_OR_MORE,
                     "+": Occurrence.ONE_OR_MORE}
_MAX_PE_DEPTH = 32


class DTDParser:
    """Recursive-descent parser for DTD declaration text."""

    def parse(self, text: str) -> DTD:
        """Parse *text* (an internal or external subset) into a DTD."""
        dtd = DTD()
        self._parse_into(text, dtd, depth=0)
        return dtd

    # -- top level -------------------------------------------------------------

    def _parse_into(self, text: str, dtd: DTD, depth: int) -> None:
        if depth > _MAX_PE_DEPTH:
            raise XMLSyntaxError("parameter entities nest too deeply")
        scanner = Scanner(text)
        while True:
            scanner.skip_whitespace()
            if scanner.at_end:
                return
            if scanner.lookahead("<!--"):
                scanner.expect("<!--")
                body = scanner.read_until("-->", "comment")
                if "--" in body:
                    scanner.error("'--' not allowed inside comment")
            elif scanner.lookahead("<?"):
                scanner.expect("<?")
                scanner.read_until("?>", "processing instruction")
            elif scanner.lookahead("<!["):
                self._parse_conditional(scanner, dtd, depth)
            elif scanner.peek() == "%":
                scanner.advance()
                name = scanner.read_name("parameter entity name")
                scanner.expect(";", context=f"parameter entity %{name}")
                definition = dtd.entities.lookup_parameter(name)
                if definition is None:
                    scanner.error(f"undefined parameter entity '%{name};'")
                if definition.is_internal:
                    self._parse_into(definition.replacement, dtd, depth + 1)
                # external parameter entities cannot be fetched offline;
                # they are skipped, matching a non-validating processor.
            elif scanner.lookahead("<!"):
                raw, line = self._read_raw_declaration(scanner)
                expanded = self._expand_parameter_entities(raw, dtd.entities)
                self._parse_declaration(expanded, dtd, line)
            else:
                scanner.error("expected markup declaration")

    def _parse_conditional(self, scanner: Scanner, dtd: DTD,
                           depth: int) -> None:
        scanner.expect("<![")
        scanner.skip_whitespace()
        keyword = self._expand_parameter_entities(
            self._read_conditional_keyword(scanner), dtd.entities).strip()
        scanner.skip_whitespace()
        scanner.expect("[", context="conditional section")
        body = self._read_conditional_body(scanner)
        if keyword == "INCLUDE":
            self._parse_into(body, dtd, depth + 1)
        elif keyword != "IGNORE":
            scanner.error(
                f"conditional section keyword must be INCLUDE or IGNORE,"
                f" got {keyword!r}")

    @staticmethod
    def _read_conditional_keyword(scanner: Scanner) -> str:
        if scanner.peek() == "%":
            scanner.advance()
            name = scanner.read_name("parameter entity name")
            scanner.expect(";")
            return f"%{name};"
        return scanner.read_name("conditional section keyword")

    @staticmethod
    def _read_conditional_body(scanner: Scanner) -> str:
        """Consume up to the matching ``]]>``, honouring nesting."""
        start = scanner.pos
        nesting = 1
        while not scanner.at_end:
            if scanner.lookahead("<!["):
                nesting += 1
                scanner.advance(3)
            elif scanner.lookahead("]]>"):
                nesting -= 1
                if nesting == 0:
                    body = scanner.text[start:scanner.pos]
                    scanner.advance(3)
                    return body
                scanner.advance(3)
            else:
                scanner.advance()
        scanner.error("unterminated conditional section")
        raise AssertionError("unreachable")

    @staticmethod
    def _read_raw_declaration(scanner: Scanner) -> tuple[str, int]:
        """Read one ``<!...>`` declaration verbatim, respecting literals."""
        line = scanner.line
        start = scanner.pos
        scanner.expect("<!")
        while not scanner.at_end:
            ch = scanner.peek()
            if ch == ">":
                scanner.advance()
                return scanner.text[start:scanner.pos], line
            if ch in ("'", '"'):
                scanner.read_quoted("literal in declaration")
            else:
                scanner.advance()
        scanner.error("unterminated markup declaration")
        raise AssertionError("unreachable")

    def _expand_parameter_entities(self, text: str,
                                   entities: EntityTable,
                                   depth: int = 0) -> str:
        """Substitute ``%name;`` references with their replacement text."""
        if depth > _MAX_PE_DEPTH:
            raise XMLSyntaxError("parameter entities nest too deeply")

        def replace(match: re.Match[str]) -> str:
            definition = entities.lookup_parameter(match.group(1))
            if definition is None:
                raise XMLSyntaxError(
                    f"undefined parameter entity '%{match.group(1)};'")
            if not definition.is_internal:
                return ""
            # Per XML 1.0 the replacement is padded with one space on
            # each side when recognized inside a declaration.
            inner = self._expand_parameter_entities(
                definition.replacement, entities, depth + 1)
            return f" {inner} "

        return _PE_REFERENCE.sub(replace, text)

    # -- declarations -------------------------------------------------------------

    def _parse_declaration(self, text: str, dtd: DTD, line: int) -> None:
        scanner = Scanner(text, start_line=line)
        scanner.expect("<!")
        keyword = scanner.read_name("declaration keyword")
        if keyword == "ELEMENT":
            self._parse_element_decl(scanner, dtd)
        elif keyword == "ATTLIST":
            self._parse_attlist_decl(scanner, dtd)
        elif keyword == "ENTITY":
            self._parse_entity_decl(scanner, dtd)
        elif keyword == "NOTATION":
            self._parse_notation_decl(scanner, dtd)
        else:
            scanner.error(f"unknown declaration <!{keyword}>")

    # ELEMENT ------------------------------------------------------------------

    def _parse_element_decl(self, scanner: Scanner, dtd: DTD) -> None:
        scanner.require_whitespace("after <!ELEMENT")
        name = scanner.read_name("element name")
        scanner.require_whitespace("after element name")
        content = self._parse_content_spec(scanner)
        scanner.skip_whitespace()
        scanner.expect(">", context=f"<!ELEMENT {name}>")
        try:
            dtd.declare_element(ElementDecl(name, content))
        except ValueError as exc:
            scanner.error(str(exc))

    def _parse_content_spec(self, scanner: Scanner) -> ContentSpec:
        if scanner.match("EMPTY"):
            return ContentSpec.empty()
        if scanner.match("ANY"):
            return ContentSpec.any()
        if not scanner.lookahead("("):
            scanner.error("expected content specification")
        # Look ahead for #PCDATA to distinguish mixed from element content.
        probe = scanner.pos + 1
        while probe < len(scanner.text) and scanner.text[probe] in " \t\r\n":
            probe += 1
        if scanner.text.startswith("#PCDATA", probe):
            return self._parse_mixed(scanner)
        particle = self._parse_group(scanner)
        return ContentSpec.children(particle)

    def _parse_mixed(self, scanner: Scanner) -> ContentSpec:
        scanner.expect("(")
        scanner.skip_whitespace()
        scanner.expect("#PCDATA", context="mixed content")
        names: list[str] = []
        while True:
            scanner.skip_whitespace()
            if scanner.match(")"):
                break
            scanner.expect("|", context="mixed content")
            scanner.skip_whitespace()
            names.append(scanner.read_name("element name in mixed content"))
        if names:
            if not scanner.match("*"):
                scanner.error("mixed content with elements requires '*'")
            return ContentSpec.mixed(tuple(names))
        scanner.match("*")  # (#PCDATA)* is legal and equivalent
        return ContentSpec.pcdata()

    def _parse_group(self, scanner: Scanner) -> Particle:
        scanner.expect("(")
        items: list[Particle] = [self._parse_cp(scanner)]
        separator: str | None = None
        while True:
            scanner.skip_whitespace()
            if scanner.match(")"):
                break
            if scanner.peek() in (",", "|"):
                ch = scanner.advance()
                if separator is None:
                    separator = ch
                elif ch != separator:
                    scanner.error("',' and '|' mixed in one group")
                scanner.skip_whitespace()
                items.append(self._parse_cp(scanner))
            else:
                scanner.error("expected ',', '|' or ')' in content model")
        occurrence = self._parse_occurrence(scanner)
        if separator == "|":
            return ChoiceParticle(items, occurrence)
        if len(items) == 1 and occurrence is Occurrence.ONE:
            # A redundant single-item group: keep the tree minimal.
            return items[0]
        return SequenceParticle(items, occurrence)

    def _parse_cp(self, scanner: Scanner) -> Particle:
        scanner.skip_whitespace()
        if scanner.lookahead("("):
            return self._parse_group(scanner)
        name = scanner.read_name("element name in content model")
        return NameParticle(name, self._parse_occurrence(scanner))

    @staticmethod
    def _parse_occurrence(scanner: Scanner) -> Occurrence:
        ch = scanner.peek()
        if ch in _OCCURRENCE_CHARS:
            scanner.advance()
            return _OCCURRENCE_CHARS[ch]
        return Occurrence.ONE

    # ATTLIST ------------------------------------------------------------------

    def _parse_attlist_decl(self, scanner: Scanner, dtd: DTD) -> None:
        scanner.require_whitespace("after <!ATTLIST")
        element_name = scanner.read_name("element name")
        while True:
            had_space = scanner.skip_whitespace()
            if scanner.match(">"):
                return
            if not had_space:
                scanner.error("whitespace required before attribute"
                              " definition")
            dtd.declare_attribute(
                element_name, self._parse_attribute_def(scanner))

    def _parse_attribute_def(self, scanner: Scanner) -> AttributeDecl:
        name = scanner.read_name("attribute name")
        scanner.require_whitespace(f"after attribute name {name!r}")
        attribute_type, enumeration = self._parse_attribute_type(scanner)
        scanner.require_whitespace("before default declaration")
        default_kind, default_value = self._parse_default(scanner)
        return AttributeDecl(name, attribute_type, default_kind,
                             default_value, enumeration)

    def _parse_attribute_type(
            self, scanner: Scanner) -> tuple[AttributeType, tuple[str, ...]]:
        if scanner.lookahead("("):
            return AttributeType.ENUMERATION, self._parse_enumeration(scanner)
        keyword = scanner.read_name("attribute type")
        if keyword == "NOTATION":
            scanner.require_whitespace("after NOTATION")
            return AttributeType.NOTATION, self._parse_enumeration(scanner)
        try:
            return AttributeType(keyword), ()
        except ValueError:
            scanner.error(f"unknown attribute type {keyword!r}")
            raise AssertionError("unreachable")

    @staticmethod
    def _parse_enumeration(scanner: Scanner) -> tuple[str, ...]:
        scanner.expect("(")
        values: list[str] = []
        while True:
            scanner.skip_whitespace()
            values.append(scanner.read_nmtoken("enumeration value"))
            scanner.skip_whitespace()
            if scanner.match(")"):
                return tuple(values)
            scanner.expect("|", context="enumeration")

    def _parse_default(
            self, scanner: Scanner) -> tuple[DefaultKind, str | None]:
        if scanner.match("#REQUIRED"):
            return DefaultKind.REQUIRED, None
        if scanner.match("#IMPLIED"):
            return DefaultKind.IMPLIED, None
        if scanner.match("#FIXED"):
            scanner.require_whitespace("after #FIXED")
            return DefaultKind.FIXED, self._attribute_literal(scanner)
        return DefaultKind.DEFAULT, self._attribute_literal(scanner)

    @staticmethod
    def _attribute_literal(scanner: Scanner) -> str:
        raw = scanner.read_quoted("default value")
        # Character references are expanded in default values; general
        # entity references are kept (they expand at document use sites).
        out: list[str] = []
        i = 0
        while i < len(raw):
            if raw[i] == "&" and raw.startswith("&#", i):
                end = raw.find(";", i)
                if end == -1:
                    scanner.error("unterminated character reference")
                try:
                    out.append(expand_char_reference(raw[i + 1:end]))
                except EntityError as exc:
                    scanner.error(str(exc))
                i = end + 1
            else:
                out.append(raw[i])
                i += 1
        return "".join(out)

    # ENTITY -------------------------------------------------------------------

    def _parse_entity_decl(self, scanner: Scanner, dtd: DTD) -> None:
        scanner.require_whitespace("after <!ENTITY")
        is_parameter = False
        if scanner.match("%"):
            is_parameter = True
            scanner.require_whitespace("after '%'")
        name = scanner.read_name("entity name")
        scanner.require_whitespace("after entity name")
        replacement = public_id = system_id = notation = None
        if scanner.peek() in ("'", '"'):
            replacement = self._entity_value(scanner, dtd.entities)
        else:
            public_id, system_id = self._parse_external_id(scanner)
            scanner.skip_whitespace()
            if scanner.match("NDATA"):
                if is_parameter:
                    scanner.error("parameter entities cannot be NDATA")
                scanner.require_whitespace("after NDATA")
                notation = scanner.read_name("notation name")
        scanner.skip_whitespace()
        scanner.expect(">", context=f"<!ENTITY {name}>")
        dtd.entities.define(EntityDefinition(
            name, replacement, is_parameter=is_parameter,
            system_id=system_id, public_id=public_id, notation=notation))

    def _entity_value(self, scanner: Scanner,
                      entities: EntityTable) -> str:
        raw = scanner.read_quoted("entity value")
        # PE references and character references expand inside entity
        # values; general entity references are preserved literally.
        expanded = self._expand_parameter_entities(raw, entities)
        out: list[str] = []
        i = 0
        while i < len(expanded):
            if expanded.startswith("&#", i):
                end = expanded.find(";", i)
                if end == -1:
                    scanner.error("unterminated character reference")
                try:
                    out.append(expand_char_reference(expanded[i + 1:end]))
                except EntityError as exc:
                    scanner.error(str(exc))
                i = end + 1
            else:
                out.append(expanded[i])
                i += 1
        return "".join(out)

    def _parse_external_id(
            self, scanner: Scanner) -> tuple[str | None, str | None]:
        if scanner.match("SYSTEM"):
            scanner.require_whitespace("after SYSTEM")
            return None, scanner.read_quoted("system identifier")
        if scanner.match("PUBLIC"):
            scanner.require_whitespace("after PUBLIC")
            public_id = scanner.read_quoted("public identifier")
            scanner.require_whitespace("after public identifier")
            return public_id, scanner.read_quoted("system identifier")
        scanner.error("expected entity value or external identifier")
        raise AssertionError("unreachable")

    # NOTATION -----------------------------------------------------------------

    def _parse_notation_decl(self, scanner: Scanner, dtd: DTD) -> None:
        scanner.require_whitespace("after <!NOTATION")
        name = scanner.read_name("notation name")
        scanner.require_whitespace("after notation name")
        public_id = system_id = None
        if scanner.match("SYSTEM"):
            scanner.require_whitespace("after SYSTEM")
            system_id = scanner.read_quoted("system identifier")
        elif scanner.match("PUBLIC"):
            scanner.require_whitespace("after PUBLIC")
            public_id = scanner.read_quoted("public identifier")
            scanner.skip_whitespace()
            if scanner.peek() in ("'", '"'):
                system_id = scanner.read_quoted("system identifier")
        else:
            scanner.error("expected SYSTEM or PUBLIC in notation")
        scanner.skip_whitespace()
        scanner.expect(">", context=f"<!NOTATION {name}>")
        dtd.declare_notation(NotationDecl(name, public_id, system_id))


def parse_dtd(text: str) -> DTD:
    """Parse DTD declaration text with a throwaway :class:`DTDParser`."""
    return DTDParser().parse(text)
