"""Content-model AST for DTD element declarations.

A content specification is one of EMPTY, ANY, mixed content
``(#PCDATA | a | b)*`` or an element-content particle built from
sequences, choices and the occurrence operators ``?``, ``*``, ``+``.

Beyond representing the model, this module computes the *child
summary* that drives the paper's mapping algorithm (Fig. 2): for each
child element type, whether it is optional (``?``/``*``/inside a
choice) and whether it is set-valued (``*``/``+``/repeated), which is
exactly the information Sections 4.2–4.3 branch on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Occurrence(enum.Enum):
    """Occurrence operator attached to a particle."""

    ONE = ""
    OPTIONAL = "?"
    ZERO_OR_MORE = "*"
    ONE_OR_MORE = "+"

    @property
    def optional(self) -> bool:
        return self in (Occurrence.OPTIONAL, Occurrence.ZERO_OR_MORE)

    @property
    def repeatable(self) -> bool:
        return self in (Occurrence.ZERO_OR_MORE, Occurrence.ONE_OR_MORE)


class Particle:
    """Base class of the element-content expression tree."""

    occurrence: Occurrence = Occurrence.ONE

    def to_source(self) -> str:
        """Render back to DTD syntax."""
        raise NotImplementedError

    def element_names(self) -> list[str]:
        """Distinct child element names in document order of appearance."""
        names: list[str] = []
        self._collect_names(names)
        seen: set[str] = set()
        unique = []
        for name in names:
            if name not in seen:
                seen.add(name)
                unique.append(name)
        return unique

    def _collect_names(self, out: list[str]) -> None:
        raise NotImplementedError


@dataclass
class NameParticle(Particle):
    """A reference to a child element type, e.g. ``Course+``."""

    name: str
    occurrence: Occurrence = Occurrence.ONE

    def to_source(self) -> str:
        return f"{self.name}{self.occurrence.value}"

    def _collect_names(self, out: list[str]) -> None:
        out.append(self.name)


@dataclass
class SequenceParticle(Particle):
    """A sequence group ``(a, b, c)``."""

    items: list[Particle] = field(default_factory=list)
    occurrence: Occurrence = Occurrence.ONE

    def to_source(self) -> str:
        inner = ",".join(item.to_source() for item in self.items)
        return f"({inner}){self.occurrence.value}"

    def _collect_names(self, out: list[str]) -> None:
        for item in self.items:
            item._collect_names(out)


@dataclass
class ChoiceParticle(Particle):
    """A choice group ``(a | b | c)``."""

    alternatives: list[Particle] = field(default_factory=list)
    occurrence: Occurrence = Occurrence.ONE

    def to_source(self) -> str:
        inner = "|".join(alt.to_source() for alt in self.alternatives)
        return f"({inner}){self.occurrence.value}"

    def _collect_names(self, out: list[str]) -> None:
        for alt in self.alternatives:
            alt._collect_names(out)


class ContentKind(enum.Enum):
    """Top-level category of a content specification."""

    EMPTY = "EMPTY"
    ANY = "ANY"
    MIXED = "MIXED"
    CHILDREN = "CHILDREN"


@dataclass(frozen=True)
class ChildOccurrence:
    """Summary of how one child element type occurs within its parent.

    These two booleans are the entire case analysis of Fig. 2's lower
    half: ``repeatable`` selects the iteration branch (Section 4.2) and
    ``optional`` selects nullable vs NOT NULL (Section 4.3).
    """

    name: str
    optional: bool
    repeatable: bool

    @property
    def mandatory(self) -> bool:
        return not self.optional


class ContentSpec:
    """A complete content specification for one element type."""

    def __init__(self, kind: ContentKind,
                 particle: Particle | None = None,
                 mixed_names: tuple[str, ...] = ()):
        if kind is ContentKind.CHILDREN and particle is None:
            raise ValueError("element content requires a particle")
        self.kind = kind
        self.particle = particle
        self.mixed_names = mixed_names

    # -- constructors --------------------------------------------------------

    @classmethod
    def empty(cls) -> "ContentSpec":
        return cls(ContentKind.EMPTY)

    @classmethod
    def any(cls) -> "ContentSpec":
        return cls(ContentKind.ANY)

    @classmethod
    def pcdata(cls) -> "ContentSpec":
        """The plain ``(#PCDATA)`` model of the paper's simple elements."""
        return cls(ContentKind.MIXED)

    @classmethod
    def mixed(cls, names: tuple[str, ...]) -> "ContentSpec":
        return cls(ContentKind.MIXED, mixed_names=tuple(names))

    @classmethod
    def children(cls, particle: Particle) -> "ContentSpec":
        return cls(ContentKind.CHILDREN, particle=particle)

    # -- classification (Fig. 2) -------------------------------------------------

    @property
    def is_pcdata_only(self) -> bool:
        """True for ``(#PCDATA)``: the paper's *simple element*."""
        return self.kind is ContentKind.MIXED and not self.mixed_names

    @property
    def is_mixed(self) -> bool:
        """True for mixed content with element alternatives."""
        return self.kind is ContentKind.MIXED and bool(self.mixed_names)

    @property
    def has_element_children(self) -> bool:
        return (
            self.kind is ContentKind.CHILDREN
            or self.is_mixed
            or self.kind is ContentKind.ANY
        )

    def element_names(self) -> list[str]:
        """Distinct referenced child element names, in order."""
        if self.kind is ContentKind.MIXED:
            return list(self.mixed_names)
        if self.kind is ContentKind.CHILDREN:
            assert self.particle is not None
            return self.particle.element_names()
        return []

    def child_summary(self) -> list[ChildOccurrence]:
        """Per-child occurrence summary used by the mapping analyzer."""
        if self.kind is ContentKind.MIXED:
            # In mixed content every element alternative is optional and
            # repeatable by definition of the (#PCDATA|...)* production.
            return [
                ChildOccurrence(name, optional=True, repeatable=True)
                for name in self.mixed_names
            ]
        if self.kind is not ContentKind.CHILDREN:
            return []
        assert self.particle is not None
        order = self.particle.element_names()
        summary: dict[str, dict[str, bool]] = {
            name: {"optional": True, "repeatable": False, "seen": False}
            for name in order
        }
        self._walk(self.particle, optional=False, repeatable=False,
                   in_choice=False, summary=summary)
        return [
            ChildOccurrence(
                name,
                optional=summary[name]["optional"],
                repeatable=summary[name]["repeatable"],
            )
            for name in order
        ]

    @staticmethod
    def _walk(particle: Particle, optional: bool, repeatable: bool,
              in_choice: bool, summary: dict[str, dict[str, bool]]) -> None:
        optional = optional or particle.occurrence.optional or in_choice
        repeatable = repeatable or particle.occurrence.repeatable
        if isinstance(particle, NameParticle):
            entry = summary[particle.name]
            if entry["seen"]:
                # The same element mentioned twice in one model means it
                # can occur more than once -> treat as set-valued.
                entry["repeatable"] = True
            else:
                entry["seen"] = True
                entry["optional"] = optional
                entry["repeatable"] = entry["repeatable"] or repeatable
            if repeatable:
                entry["repeatable"] = True
            if not optional:
                entry["optional"] = False
            return
        if isinstance(particle, SequenceParticle):
            for item in particle.items:
                ContentSpec._walk(item, optional, repeatable, False, summary)
        elif isinstance(particle, ChoiceParticle):
            multi = len(particle.alternatives) > 1
            for alt in particle.alternatives:
                ContentSpec._walk(alt, optional, repeatable,
                                  in_choice=multi, summary=summary)

    # -- rendering ------------------------------------------------------------

    def to_source(self) -> str:
        """Render back to the DTD syntax of an <!ELEMENT> declaration."""
        if self.kind is ContentKind.EMPTY:
            return "EMPTY"
        if self.kind is ContentKind.ANY:
            return "ANY"
        if self.kind is ContentKind.MIXED:
            if not self.mixed_names:
                return "(#PCDATA)"
            names = "|".join(self.mixed_names)
            return f"(#PCDATA|{names})*"
        assert self.particle is not None
        return self.particle.to_source()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ContentSpec({self.to_source()})"
