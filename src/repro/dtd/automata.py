"""Glushkov automata for element-content validation.

XML 1.0 requires element content to match the declared content model
and requires the model itself to be *deterministic* (Appendix E).  The
classic construction — positions, nullable, first/last/follow sets —
gives both: a position automaton that validates a child sequence in
linear time, and a determinism check (no state may have two outgoing
transitions on the same element name).
"""

from __future__ import annotations

from .content import (
    ChoiceParticle,
    NameParticle,
    Occurrence,
    Particle,
    SequenceParticle,
)


class NondeterministicModelError(ValueError):
    """The content model violates XML's determinism constraint."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(
            f"content model is not deterministic: competing transitions"
            f" on element '{name}'")


class _Facts:
    """first/last/nullable/follow facts for one sub-particle."""

    __slots__ = ("nullable", "first", "last")

    def __init__(self, nullable: bool, first: frozenset[int],
                 last: frozenset[int]):
        self.nullable = nullable
        self.first = first
        self.last = last


class ContentAutomaton:
    """A compiled content model.

    States are positions 0..n where 0 is the start state and positions
    1..n each correspond to one element-name occurrence in the model.
    """

    def __init__(self, particle: Particle, check_deterministic: bool = True):
        self._names: list[str] = [""]  # position 0 is the start state
        self._follow: dict[int, set[int]] = {0: set()}
        facts = self._build(particle)
        self._follow[0] = set(facts.first)
        self._accepting: set[int] = set(facts.last)
        self._nullable = facts.nullable
        if check_deterministic:
            self._check_determinism()

    # -- construction ------------------------------------------------------------

    def _new_position(self, name: str) -> int:
        self._names.append(name)
        position = len(self._names) - 1
        self._follow[position] = set()
        return position

    def _build(self, particle: Particle) -> _Facts:
        if isinstance(particle, NameParticle):
            position = self._new_position(particle.name)
            facts = _Facts(False, frozenset({position}),
                           frozenset({position}))
        elif isinstance(particle, SequenceParticle):
            facts = self._build_sequence(particle.items)
        elif isinstance(particle, ChoiceParticle):
            facts = self._build_choice(particle.alternatives)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown particle {particle!r}")
        return self._apply_occurrence(facts, particle.occurrence)

    def _build_sequence(self, items: list[Particle]) -> _Facts:
        facts = self._build(items[0])
        for item in items[1:]:
            right = self._build(item)
            for position in facts.last:
                self._follow[position].update(right.first)
            first = (facts.first | right.first
                     if facts.nullable else facts.first)
            last = (facts.last | right.last
                    if right.nullable else right.last)
            facts = _Facts(facts.nullable and right.nullable,
                           frozenset(first), frozenset(last))
        return facts

    def _build_choice(self, alternatives: list[Particle]) -> _Facts:
        nullable = False
        first: set[int] = set()
        last: set[int] = set()
        for alternative in alternatives:
            facts = self._build(alternative)
            nullable = nullable or facts.nullable
            first |= facts.first
            last |= facts.last
        return _Facts(nullable, frozenset(first), frozenset(last))

    def _apply_occurrence(self, facts: _Facts,
                          occurrence: Occurrence) -> _Facts:
        if occurrence.repeatable:
            for position in facts.last:
                self._follow[position].update(facts.first)
        nullable = facts.nullable or occurrence.optional
        return _Facts(nullable, facts.first, facts.last)

    def _check_determinism(self) -> None:
        for position, successors in self._follow.items():
            seen: dict[str, int] = {}
            for successor in successors:
                name = self._names[successor]
                if seen.get(name, successor) != successor:
                    raise NondeterministicModelError(name)
                seen[name] = successor

    # -- validation -----------------------------------------------------------------

    def matches(self, names: list[str]) -> bool:
        """True if the sequence of child element names is accepted."""
        return self.explain(names) is None

    def explain(self, names: list[str]) -> str | None:
        """Return None if accepted, else a human-readable refusal."""
        state = 0
        for index, name in enumerate(names):
            next_state = None
            for successor in self._follow[state]:
                if self._names[successor] == name:
                    next_state = successor
                    break
            if next_state is None:
                expected = sorted({
                    self._names[s] for s in self._follow[state]})
                return (f"element '{name}' not allowed at position"
                        f" {index + 1}; expected one of {expected or ['$']}")
            state = next_state
        if state == 0:
            if self._nullable:
                return None
        elif state in self._accepting:
            return None
        expected = sorted({self._names[s] for s in self._follow[state]})
        return (f"content ended prematurely; expected one of"
                f" {expected}")
