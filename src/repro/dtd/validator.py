"""Validity checking of a DOM document against a DTD.

Together with the well-formedness checks done by the XML parser this
reproduces the "Well-Formedness / Validity Check" stage of Fig. 1.
The validator reports *all* violations rather than stopping at the
first, applies attribute defaults from the DTD (like a validating
processor must), and enforces the validity constraints that matter to
the mapping pipeline: content models, attribute declarations and
types, #REQUIRED/#FIXED, and ID/IDREF integrity — the latter is what
Section 4.4's REF mapping relies on.
"""

from __future__ import annotations

from repro.xmlkit import chars
from repro.xmlkit.dom import Document, Element
from repro.xmlkit.errors import XMLValidityError
from .automata import ContentAutomaton, NondeterministicModelError
from .content import ContentKind
from .model import DTD, AttributeDecl, AttributeType, DefaultKind


class ValidationReport:
    """Outcome of a validation run."""

    def __init__(self) -> None:
        self.errors: list[XMLValidityError] = []
        #: id value -> element tag, collected for IDREF checking
        self.ids: dict[str, str] = {}

    @property
    def valid(self) -> bool:
        return not self.errors

    def add(self, message: str, element: str | None = None) -> None:
        self.errors.append(XMLValidityError(message, element))

    def raise_first(self) -> None:
        """Raise the first collected error, if any."""
        if self.errors:
            raise self.errors[0]


class Validator:
    """Validates documents against one DTD.

    Content automata are compiled once per element declaration and
    cached, so a validator instance amortizes over many documents.
    """

    def __init__(self, dtd: DTD, apply_defaults: bool = True):
        self.dtd = dtd
        self.apply_defaults = apply_defaults
        self._automata: dict[str, ContentAutomaton] = {}

    # -- public API ------------------------------------------------------------

    def validate(self, document: Document) -> ValidationReport:
        """Validate *document*; returns a report listing every violation."""
        report = ValidationReport()
        root = document.root_element
        if document.doctype is not None and document.doctype.name != root.tag:
            report.add(
                f"root element is <{root.tag}> but DOCTYPE declares"
                f" '{document.doctype.name}'", root.tag)
        pending_idrefs: list[tuple[str, str]] = []
        self._validate_element(root, report, pending_idrefs)
        for value, tag in pending_idrefs:
            if value not in report.ids:
                report.add(f"IDREF '{value}' does not match any ID", tag)
        return report

    def assert_valid(self, document: Document) -> None:
        """Validate and raise the first violation, if any."""
        self.validate(document).raise_first()

    # -- elements ----------------------------------------------------------------

    def _validate_element(self, element: Element, report: ValidationReport,
                          pending_idrefs: list[tuple[str, str]]) -> None:
        declaration = self.dtd.element(element.tag)
        if declaration is None:
            report.add("element type is not declared", element.tag)
        else:
            self._check_content(element, declaration.content, report)
        self._check_attributes(element, report, pending_idrefs)
        for child in element.child_elements:
            self._validate_element(child, report, pending_idrefs)

    def _check_content(self, element: Element, content, report) -> None:
        kind = content.kind
        if kind is ContentKind.ANY:
            return
        if kind is ContentKind.EMPTY:
            if element.children:
                report.add("declared EMPTY but has content", element.tag)
            return
        if kind is ContentKind.MIXED:
            allowed = set(content.mixed_names)
            for child in element.child_elements:
                if child.tag not in allowed:
                    report.add(
                        f"element '{child.tag}' not allowed in mixed"
                        f" content", element.tag)
            return
        # element content: character data must be whitespace only and
        # the child sequence must satisfy the automaton.
        for child in element.children:
            if child.node_type == "text" and not child.is_whitespace():
                report.add("character data not allowed in element content",
                           element.tag)
                break
        automaton = self._automaton_for(element.tag, content, report)
        if automaton is None:
            return
        names = [child.tag for child in element.child_elements]
        problem = automaton.explain(names)
        if problem is not None:
            report.add(problem, element.tag)

    def _automaton_for(self, tag: str, content,
                       report: ValidationReport) -> ContentAutomaton | None:
        if tag in self._automata:
            return self._automata[tag]
        try:
            automaton = ContentAutomaton(content.particle)
        except NondeterministicModelError as exc:
            report.add(str(exc), tag)
            return None
        self._automata[tag] = automaton
        return automaton

    # -- attributes ---------------------------------------------------------------

    def _check_attributes(self, element: Element, report: ValidationReport,
                          pending_idrefs: list[tuple[str, str]]) -> None:
        declarations = self.dtd.attributes_of(element.tag)
        for name in element.attributes:
            if name not in declarations:
                report.add(f"attribute '{name}' is not declared",
                           element.tag)
        for name, declaration in declarations.items():
            attr = element.attributes.get(name)
            if attr is None:
                self._handle_missing(element, declaration, report)
                continue
            value = attr.value
            if declaration.attribute_type.is_tokenized:
                value = " ".join(value.split())
                attr.value = value
            self._check_attribute_value(element, declaration, value,
                                        report, pending_idrefs)

    def _handle_missing(self, element: Element, declaration: AttributeDecl,
                        report: ValidationReport) -> None:
        if declaration.default_kind is DefaultKind.REQUIRED:
            report.add(f"required attribute '{declaration.name}' missing",
                       element.tag)
        elif declaration.default_value is not None and self.apply_defaults:
            element.set(declaration.name, declaration.default_value,
                        specified=False)

    def _check_attribute_value(self, element: Element,
                               declaration: AttributeDecl, value: str,
                               report: ValidationReport,
                               pending_idrefs: list[tuple[str, str]]) -> None:
        kind = declaration.attribute_type
        tag = element.tag
        name = declaration.name
        if declaration.default_kind is DefaultKind.FIXED:
            if value != declaration.default_value:
                report.add(
                    f"attribute '{name}' is #FIXED"
                    f" \"{declaration.default_value}\" but has"
                    f" value \"{value}\"", tag)
        if kind is AttributeType.ID:
            if not chars.is_name(value):
                report.add(f"ID attribute '{name}' value '{value}' is not"
                           f" a Name", tag)
            elif value in report.ids:
                report.add(f"duplicate ID value '{value}'", tag)
            else:
                report.ids[value] = tag
        elif kind is AttributeType.IDREF:
            pending_idrefs.append((value, tag))
        elif kind is AttributeType.IDREFS:
            tokens = value.split()
            if not tokens:
                report.add(f"IDREFS attribute '{name}' is empty", tag)
            pending_idrefs.extend((token, tag) for token in tokens)
        elif kind is AttributeType.NMTOKEN:
            if not chars.is_nmtoken(value):
                report.add(f"attribute '{name}' value '{value}' is not a"
                           f" name token", tag)
        elif kind is AttributeType.NMTOKENS:
            if not value.split():
                report.add(f"NMTOKENS attribute '{name}' is empty", tag)
            for token in value.split():
                if not chars.is_nmtoken(token):
                    report.add(f"attribute '{name}' token '{token}' is not"
                               f" a name token", tag)
        elif kind in (AttributeType.ENUMERATION, AttributeType.NOTATION):
            if value not in declaration.enumeration:
                report.add(
                    f"attribute '{name}' value '{value}' not in"
                    f" {list(declaration.enumeration)}", tag)
        elif kind is AttributeType.ENTITY:
            self._check_entity_token(value, name, tag, report)
        elif kind is AttributeType.ENTITIES:
            for token in value.split():
                self._check_entity_token(token, name, tag, report)

    def _check_entity_token(self, token: str, name: str, tag: str,
                            report: ValidationReport) -> None:
        definition = self.dtd.entities.lookup_general(token)
        if definition is None or not definition.is_unparsed:
            report.add(f"attribute '{name}' must name an unparsed entity,"
                       f" got '{token}'", tag)


def validate(document: Document, dtd: DTD) -> ValidationReport:
    """Validate *document* against *dtd* with a throwaway validator."""
    return Validator(dtd).validate(document)
