"""The "DTD DOM tree" of Fig. 1 and the element graph of Section 6.2.

XML2Oracle turns the parsed DTD into an intermediate tree whose nodes
carry the occurrence/optionality constraints the mapping algorithm
branches on.  The paper notes two structural hazards of that tree
(Section 6.2): elements with *multiple parents* are duplicated, and
*recursive* element relationships would make naive tree construction
loop forever — the suggested remedy being a graph representation.
Both the tree (with duplication and a recursion guard) and the graph
(built on :mod:`networkx`) are provided here, so the generator can
choose its strategy and the FIG3/CLM6 experiments can measure the
difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from .content import ChildOccurrence, ContentKind
from .model import DTD, AttributeDecl


class RecursionError_(ValueError):
    """Raised when tree construction meets a recursive element cycle."""

    def __init__(self, cycle: tuple[str, ...]):
        self.cycle = cycle
        super().__init__(
            "recursive element relationship: " + " -> ".join(cycle))


@dataclass
class DTDTreeNode:
    """One node of the intermediate DTD tree.

    ``occurrence`` describes how this element occurs *within its
    parent* (None for the root).  ``duplicate_of`` is set when the same
    element type already appeared elsewhere in the tree — the Fig. 3
    situation — so consumers can detect sharing.
    """

    name: str
    occurrence: ChildOccurrence | None
    content_kind: ContentKind
    is_simple: bool
    attributes: dict[str, AttributeDecl] = field(default_factory=dict)
    children: list["DTDTreeNode"] = field(default_factory=list)
    duplicate_of: str | None = None

    @property
    def is_set_valued(self) -> bool:
        """True for '+' or '*' children (Section 4.2 iteration)."""
        return self.occurrence is not None and self.occurrence.repeatable

    @property
    def is_optional(self) -> bool:
        """True for '?' or '*' children (Section 4.3 nullability)."""
        return self.occurrence is not None and self.occurrence.optional

    def walk(self):
        """Yield this node and all descendants, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def pretty(self, indent: str = "") -> str:
        """Human-readable rendering used by examples and debugging."""
        marker = ""
        if self.occurrence is not None:
            if self.occurrence.repeatable:
                marker = "*" if self.occurrence.optional else "+"
            elif self.occurrence.optional:
                marker = "?"
        label = f"{indent}{self.name}{marker}"
        if self.is_simple:
            label += " (#PCDATA)"
        if self.attributes:
            label += " [" + ", ".join(self.attributes) + "]"
        lines = [label]
        for child in self.children:
            lines.append(child.pretty(indent + "  "))
        return "\n".join(lines)


def element_graph(dtd: DTD) -> nx.DiGraph:
    """Directed graph of element containment: parent -> child edges.

    Edge attributes carry the :class:`ChildOccurrence` summary.  This is
    the graph representation Section 6.2 recommends over the tree.
    """
    graph = nx.DiGraph()
    for name in dtd.declaration_order:
        graph.add_node(name)
        for child in dtd.elements[name].content.child_summary():
            graph.add_edge(name, child.name, occurrence=child)
    return graph


def recursive_elements(dtd: DTD) -> set[str]:
    """Element types that participate in a containment cycle."""
    graph = element_graph(dtd)
    recursive: set[str] = set()
    for component in nx.strongly_connected_components(graph):
        if len(component) > 1:
            recursive |= component
        else:
            (node,) = component
            if graph.has_edge(node, node):
                recursive.add(node)
    return recursive


def shared_elements(dtd: DTD) -> set[str]:
    """Element types referenced by more than one parent (Fig. 3 case)."""
    graph = element_graph(dtd)
    return {
        node for node in graph.nodes
        if graph.in_degree(node) > 1
    }


def containment_cycles(dtd: DTD) -> list[list[str]]:
    """All simple containment cycles, for diagnostics."""
    return list(nx.simple_cycles(element_graph(dtd)))


def build_tree(dtd: DTD, root: str | None = None,
               allow_recursion: bool = False,
               max_depth: int = 64) -> DTDTreeNode:
    """Build the intermediate DTD tree rooted at *root*.

    Shared elements are duplicated (each copy marked via
    ``duplicate_of``).  Recursive DTDs raise :class:`RecursionError_`
    unless *allow_recursion* is set, in which case the recursive edge
    becomes a leaf marked as a duplicate — the hook the generator's
    REF strategy uses (Section 6.2).
    """
    if root is None:
        candidates = dtd.root_candidates()
        if len(candidates) != 1:
            raise ValueError(
                f"cannot infer a unique root element, candidates:"
                f" {candidates}; pass root= explicitly")
        root = candidates[0]
    if dtd.element(root) is None:
        raise ValueError(f"root element '{root}' is not declared")
    seen_anywhere: set[str] = set()
    return _build_node(dtd, root, None, (), seen_anywhere,
                       allow_recursion, max_depth)


def _build_node(dtd: DTD, name: str, occurrence: ChildOccurrence | None,
                ancestry: tuple[str, ...], seen_anywhere: set[str],
                allow_recursion: bool, max_depth: int) -> DTDTreeNode:
    if name in ancestry:
        cycle = ancestry[ancestry.index(name):] + (name,)
        if not allow_recursion:
            raise RecursionError_(cycle)
        declaration = dtd.element(name)
        content = declaration.content if declaration else None
        return DTDTreeNode(
            name=name,
            occurrence=occurrence,
            content_kind=content.kind if content else ContentKind.ANY,
            is_simple=bool(content and content.is_pcdata_only),
            attributes=dict(dtd.attributes_of(name)),
            duplicate_of=name,
        )
    if len(ancestry) >= max_depth:
        raise RecursionError_(ancestry + (name,))

    declaration = dtd.element(name)
    if declaration is None:
        # Referenced but undeclared: treat as simple text, like a
        # permissive processor would.
        return DTDTreeNode(
            name=name, occurrence=occurrence, content_kind=ContentKind.MIXED,
            is_simple=True, attributes=dict(dtd.attributes_of(name)))

    duplicate_of = name if name in seen_anywhere else None
    seen_anywhere.add(name)
    node = DTDTreeNode(
        name=name,
        occurrence=occurrence,
        content_kind=declaration.content.kind,
        is_simple=declaration.content.is_pcdata_only,
        attributes=dict(dtd.attributes_of(name)),
        duplicate_of=duplicate_of,
    )
    for child in declaration.content.child_summary():
        node.children.append(_build_node(
            dtd, child.name, child, ancestry + (name,), seen_anywhere,
            allow_recursion, max_depth))
    return node
