"""DTD substrate: parser, content models, validator and DTD tree.

Replaces the Wutka DTD parser of Fig. 1.  Typical use:

>>> from repro.dtd import parse_dtd, build_tree
>>> dtd = parse_dtd('<!ELEMENT a (b*)> <!ELEMENT b (#PCDATA)>')
>>> tree = build_tree(dtd)
>>> tree.children[0].is_set_valued
True
"""

from .automata import ContentAutomaton, NondeterministicModelError
from .content import (
    ChildOccurrence,
    ChoiceParticle,
    ContentKind,
    ContentSpec,
    NameParticle,
    Occurrence,
    Particle,
    SequenceParticle,
)
from .model import (
    AttributeDecl,
    AttributeType,
    DTD,
    DefaultKind,
    ElementDecl,
    NotationDecl,
)
from .parser import DTDParser, parse_dtd
from .tree import (
    DTDTreeNode,
    RecursionError_,
    build_tree,
    containment_cycles,
    element_graph,
    recursive_elements,
    shared_elements,
)
from .validator import ValidationReport, Validator, validate

__all__ = [
    "AttributeDecl",
    "AttributeType",
    "ChildOccurrence",
    "ChoiceParticle",
    "ContentAutomaton",
    "ContentKind",
    "ContentSpec",
    "DTD",
    "DTDParser",
    "DTDTreeNode",
    "DefaultKind",
    "ElementDecl",
    "NameParticle",
    "NondeterministicModelError",
    "NotationDecl",
    "Occurrence",
    "Particle",
    "RecursionError_",
    "SequenceParticle",
    "ValidationReport",
    "Validator",
    "build_tree",
    "containment_cycles",
    "element_graph",
    "parse_dtd",
    "recursive_elements",
    "shared_elements",
    "validate",
]
