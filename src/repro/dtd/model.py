"""Declaration objects and the DTD container.

This is the output of the "DTD parser" box of Fig. 1 — the structure
XML2Oracle walks to generate the object-relational schema.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.xmlkit.entities import EntityTable
from .content import ContentSpec


class AttributeType(enum.Enum):
    """Declared type of an XML attribute (Section 4.4 lists the main ones)."""

    CDATA = "CDATA"
    ID = "ID"
    IDREF = "IDREF"
    IDREFS = "IDREFS"
    ENTITY = "ENTITY"
    ENTITIES = "ENTITIES"
    NMTOKEN = "NMTOKEN"
    NMTOKENS = "NMTOKENS"
    NOTATION = "NOTATION"
    ENUMERATION = "ENUMERATION"

    @property
    def is_tokenized(self) -> bool:
        return self is not AttributeType.CDATA


class DefaultKind(enum.Enum):
    """Default declaration of an attribute."""

    REQUIRED = "#REQUIRED"
    IMPLIED = "#IMPLIED"
    FIXED = "#FIXED"
    DEFAULT = ""


@dataclass
class AttributeDecl:
    """One attribute definition from an <!ATTLIST> declaration."""

    name: str
    attribute_type: AttributeType
    default_kind: DefaultKind
    default_value: str | None = None
    enumeration: tuple[str, ...] = ()

    @property
    def required(self) -> bool:
        """True for #REQUIRED attributes (mapped NOT NULL, Section 4.4)."""
        return self.default_kind is DefaultKind.REQUIRED

    @property
    def optional(self) -> bool:
        """True for #IMPLIED attributes (mapped nullable, Section 4.3)."""
        return self.default_kind is DefaultKind.IMPLIED

    def to_source(self) -> str:
        if self.attribute_type is AttributeType.ENUMERATION:
            type_text = "(" + "|".join(self.enumeration) + ")"
        elif self.attribute_type is AttributeType.NOTATION:
            type_text = "NOTATION (" + "|".join(self.enumeration) + ")"
        else:
            type_text = self.attribute_type.value
        parts = [self.name, type_text]
        if self.default_kind is DefaultKind.FIXED:
            parts.append(f'#FIXED "{self.default_value}"')
        elif self.default_kind is DefaultKind.DEFAULT:
            parts.append(f'"{self.default_value}"')
        else:
            parts.append(self.default_kind.value)
        return " ".join(parts)


@dataclass
class ElementDecl:
    """An <!ELEMENT name content> declaration."""

    name: str
    content: ContentSpec

    def to_source(self) -> str:
        return f"<!ELEMENT {self.name} {self.content.to_source()}>"


@dataclass
class NotationDecl:
    """A <!NOTATION ...> declaration."""

    name: str
    public_id: str | None = None
    system_id: str | None = None


@dataclass
class DTD:
    """A parsed document type definition.

    Attribute lists are merged per element (multiple <!ATTLIST> for the
    same element accumulate; the first declaration of an attribute
    wins, per XML 1.0 section 3.3).
    """

    elements: dict[str, ElementDecl] = field(default_factory=dict)
    attributes: dict[str, dict[str, AttributeDecl]] = field(
        default_factory=dict)
    entities: EntityTable = field(default_factory=EntityTable)
    notations: dict[str, NotationDecl] = field(default_factory=dict)
    #: element names in declaration order (stable schema generation)
    declaration_order: list[str] = field(default_factory=list)

    # -- construction -----------------------------------------------------------

    def declare_element(self, declaration: ElementDecl) -> None:
        """Register an element declaration; duplicate names are an error."""
        if declaration.name in self.elements:
            raise ValueError(
                f"element type '{declaration.name}' declared twice")
        self.elements[declaration.name] = declaration
        self.declaration_order.append(declaration.name)

    def declare_attribute(self, element_name: str,
                          declaration: AttributeDecl) -> None:
        """Register one attribute; first declaration wins."""
        per_element = self.attributes.setdefault(element_name, {})
        per_element.setdefault(declaration.name, declaration)

    def declare_notation(self, declaration: NotationDecl) -> None:
        self.notations.setdefault(declaration.name, declaration)

    # -- queries -----------------------------------------------------------------

    def element(self, name: str) -> ElementDecl | None:
        return self.elements.get(name)

    def attributes_of(self, element_name: str) -> dict[str, AttributeDecl]:
        """Attribute declarations for *element_name* (possibly empty)."""
        return self.attributes.get(element_name, {})

    def id_attribute_of(self, element_name: str) -> AttributeDecl | None:
        """The ID-typed attribute of an element, if any (at most one)."""
        for decl in self.attributes_of(element_name).values():
            if decl.attribute_type is AttributeType.ID:
                return decl
        return None

    def root_candidates(self) -> list[str]:
        """Declared elements that no other declared element references.

        When a document carries no DOCTYPE name, these are the possible
        roots; a well-designed DTD has exactly one.
        """
        referenced: set[str] = set()
        for declaration in self.elements.values():
            referenced.update(declaration.content.element_names())
        return [
            name for name in self.declaration_order
            if name not in referenced
        ]

    def undeclared_children(self) -> dict[str, list[str]]:
        """Children referenced in content models but never declared."""
        missing: dict[str, list[str]] = {}
        for name, declaration in self.elements.items():
            absent = [
                child for child in declaration.content.element_names()
                if child not in self.elements
            ]
            if absent:
                missing[name] = absent
        return missing

    # -- rendering ------------------------------------------------------------------

    def to_source(self) -> str:
        """Render the DTD back to declaration text."""
        lines: list[str] = []
        for name in self.declaration_order:
            lines.append(self.elements[name].to_source())
            per_element = self.attributes.get(name)
            if per_element:
                body = "\n  ".join(
                    decl.to_source() for decl in per_element.values())
                lines.append(f"<!ATTLIST {name}\n  {body}>")
        for name, definition in self.entities.general.items():
            if definition.is_internal:
                lines.append(f'<!ENTITY {name} "{definition.replacement}">')
        return "\n".join(lines)
