#!/usr/bin/env python3
"""Quickstart: the paper's Appendix A example, end to end.

Run with:  python examples/quickstart.py

Walks the full XML2Oracle pipeline on the university document the
paper uses throughout: parse document + DTD, generate the
object-relational schema, store with a single INSERT, query with dot
notation, and reconstruct the document (entities included).
"""

from repro.core import XML2Oracle, compare
from repro.workloads import SAMPLE_DOCUMENT
from repro.xmlkit import parse


def main() -> None:
    print("=" * 70)
    print("1. Parse the Appendix A document (DTD in the internal"
          " subset)")
    print("=" * 70)
    document = parse(SAMPLE_DOCUMENT)
    print(f"root element: <{document.root_element.tag}>,"
          f" {document.count_nodes('element')} elements")

    print()
    print("=" * 70)
    print("2. Generate and execute the object-relational schema"
          " (Section 4.2)")
    print("=" * 70)
    tool = XML2Oracle()
    schema = tool.register_schema(document.doctype.dtd)
    print(tool.schema_script())

    print()
    print("=" * 70)
    print("3. Store the document — one nested INSERT (Section 4.2)")
    print("=" * 70)
    stored = tool.store(document, doc_name="appendix_a.xml")
    statement = stored.load_result.statements[0]
    print(f"INSERT statements: {stored.load_result.insert_count}")
    print(statement[:400] + ("..." if len(statement) > 400 else ""))

    print()
    print("=" * 70)
    print("4. Query with dot notation (Section 4.1)")
    print("=" * 70)
    query = tool.path_query(
        "/University/Student",
        predicate=("Course/Professor/PName", "=", "Jaeger"),
        select="LName")
    print("SQL:", query.sql)
    result = tool.db.execute(query.sql)
    print("students of Professor Jaeger:",
          [row[0] for row in result.rows])

    print()
    print("=" * 70)
    print("5. Reconstruct the document (Sections 5/6.1: meta-data"
          " and entities)")
    print("=" * 70)
    text = tool.fetch_text(stored.doc_id, indent="  ")
    print(text)
    report = compare(document, tool.fetch(stored.doc_id))
    print("round-trip fidelity:", report.describe())


if __name__ == "__main__":
    main()
