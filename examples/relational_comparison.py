#!/usr/bin/env python3
"""The paper's comparison: object-relational vs generic relational
mappings, plus object views bridging the two (Sections 1, 4, 6.3).

Run with:  python examples/relational_comparison.py

Prints the measured counterparts of the paper's qualitative claims:
INSERT statements per document, join counts per path query, and the
Section 6.3 object view over a shredded schema.
"""

from repro.core import ObjectViewBuilder, analyze, generate_schema
from repro.core.reporting import compare_mappings
from repro.ordb import Database
from repro.relational import InliningMapping
from repro.workloads import make_university, university_dtd

PATH = ["University", "Student", "Course", "Professor", "PName"]


def main() -> None:
    document = make_university(students=15, courses_per_student=3)
    report = compare_mappings(university_dtd(), document, PATH)
    print(f"workload: university document with 15 students,"
          f" {report.document_nodes} nodes")
    print(f"query: /{'/'.join(PATH)}")
    print()
    print(report.format_table())
    print()
    print("CLM1 ordering (OR9 < OR8 <= inlining < attribute < edge):",
          "holds" if report.ordering_holds() else "VIOLATED")

    print()
    print("=" * 70)
    print("Object views (Section 6.3): OR face over the shredded"
          " schema")
    print("=" * 70)
    dtd = university_dtd()
    plan = analyze(dtd)
    db = Database()
    for statement in generate_schema(plan).statements:
        db.execute(statement)
    relational = InliningMapping(dtd)
    relational.install(db)
    relational.load(db, document, 1)
    builder = ObjectViewBuilder(plan, relational)
    view_sql = builder.build_view("University")
    print(view_sql[:500] + "...")
    db.execute(view_sql)
    students = db.execute(
        "SELECT COUNT(*) FROM OView_University v,"
        " TABLE(v.University.attrStudent) s").scalar()
    print(f"\nstudents visible through the object view: {students}")


if __name__ == "__main__":
    main()
