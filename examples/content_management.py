#!/usr/bin/env python3
"""Content management: document-centric XML with everything that is
hard to round-trip.

Run with:  python examples/content_management.py

The paper's motivation (Section 1) is content management systems where
information loss matters: comments, processing instructions, entity
references, mixed content.  This example stores a document-centric
article and shows exactly what the meta-data extensions (Sections 5,
6.1, 7) preserve and what the mapping inherently flattens.
"""

from repro.core import XML2Oracle, compare
from repro.workloads import ARTICLE_DOCUMENT
from repro.xmlkit import parse


def show_report(label: str, report) -> None:
    print(f"--- {label} ---")
    print(report.describe())
    print()


def main() -> None:
    document = parse(ARTICLE_DOCUMENT)
    print("input document:")
    print(ARTICLE_DOCUMENT)

    print("=" * 70)
    print("A. Store WITH the meta-database (Sections 5/6.1/7)")
    print("=" * 70)
    tool = XML2Oracle()
    tool.register_schema(document.doctype.dtd)
    stored = tool.store(document, doc_name="article.xml",
                        url="cms://articles/2002-03")
    print(f"misc nodes captured in TabMiscNode: {stored.misc_count}")
    info = tool.metadata.document_info(stored.doc_id)
    print(f"TabMetadata row: name={info[0]!r} url={info[1]!r}"
          f" version={info[3]} charset={info[4]}")
    entities = tool.metadata.entities_for(
        stored.schema.schema_id)
    print(f"TabEntity rows: {entities}")
    print()
    rebuilt = tool.fetch(stored.doc_id)
    show_report("fidelity with meta-data", compare(document, rebuilt))
    print("reconstructed text (entities re-substituted):")
    print(tool.fetch_text(stored.doc_id, indent="  "))

    print("=" * 70)
    print("B. Store WITHOUT the meta-database — the paper's"
          " information-loss drawback")
    print("=" * 70)
    bare = XML2Oracle(metadata=False)
    bare.register_schema(document.doctype.dtd)
    bare_stored = bare.store(document)
    bare_rebuilt = bare.fetch(bare_stored.doc_id)
    show_report("fidelity without meta-data",
                compare(document, bare_rebuilt))

    print("=" * 70)
    print("C. Mixed content is flattened either way (a 'known"
          " transformation problem', Section 1)")
    print("=" * 70)
    mixed_source = """<!DOCTYPE ArticleDoc SYSTEM "a.dtd">
<ArticleDoc>
  <Meta><DocTitle>Mixed</DocTitle></Meta>
  <Body><Para>plain <Em>emphasized</Em> and <Code>code</Code>.</Para>
  </Body>
</ArticleDoc>"""
    mixed = parse(mixed_source)
    tool2 = XML2Oracle(validate_documents=False)
    tool2.register_schema(document.doctype.dtd)
    stored2 = tool2.store(mixed)
    for warning in tool2.schemas[-1].plan.warnings:
        print("analyzer warning:", warning)
    para = tool2.fetch(stored2.doc_id).root_element \
        .find("Body").find("Para")
    print("stored paragraph text:", para.text())
    print("inline <Em>/<Code> markup:",
          [c.tag for c in para.child_elements] or "lost (flattened)")


if __name__ == "__main__":
    main()
