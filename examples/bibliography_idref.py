#!/usr/bin/env python3
"""ID/IDREF mapping: citation links become REF columns (Section 4.4).

Run with:  python examples/bibliography_idref.py

The paper: "Elements can reference other elements identified by an ID
attribute through IDREF attributes.  A mapping of those attributes
into simple VARCHAR database columns would ignore their semantics.
Instead, IDREF attributes must be represented as REF-valued columns
... This kind of information cannot be captured from the DTD, rather
from the XML document."
"""

from repro.core import XML2Oracle, compare, infer_idref_targets
from repro.dtd import parse_dtd
from repro.workloads import BIBLIOGRAPHY_DOCUMENT, BIBLIOGRAPHY_DTD
from repro.xmlkit import parse


def main() -> None:
    dtd = parse_dtd(BIBLIOGRAPHY_DTD)
    document = parse(BIBLIOGRAPHY_DOCUMENT)

    print("=" * 70)
    print("1. IDREF targets are inferred from the document, not the"
          " DTD")
    print("=" * 70)
    targets = infer_idref_targets(document, dtd)
    for (element, attribute), target in targets.items():
        print(f"  {element}@{attribute} -> <{target}>")

    print()
    print("=" * 70)
    print("2. Generated schema: Article rows, Cites holds a REF")
    print("=" * 70)
    tool = XML2Oracle()
    schema = tool.register_schema(dtd, idref_targets=targets)
    for statement in schema.script.statements:
        if "REF" in statement or "TabArticle" in statement:
            print(statement + ";")

    print()
    print("=" * 70)
    print("3. Loading wires the references (deferred UPDATEs allow"
          " citation cycles)")
    print("=" * 70)
    stored = tool.store(document)
    print(f"INSERT statements: {stored.load_result.insert_count},"
          f" deferred IDREF UPDATEs: {stored.load_result.update_count}")

    print()
    print("=" * 70)
    print("4. Navigating a citation through the REF (implicit"
          " dereference)")
    print("=" * 70)
    result = tool.sql(
        "SELECT a.attrTitle, c.COLUMN_VALUE.attrref.attrTitle"
        " FROM TabArticle a, TABLE(a.attrCites) c")
    print("citation edges (citing -> cited):")
    for citing, cited in result.rows:
        print(f"  {str(citing)[:46]:<48} -> {str(cited)[:40]}")

    print()
    print("=" * 70)
    print("5. Round trip restores the original key/ref attributes")
    print("=" * 70)
    rebuilt = tool.fetch(stored.doc_id)
    report = compare(document, rebuilt)
    print(report.describe())
    for article in rebuilt.root_element.find_all("Article"):
        refs = [c.get("ref") for c in article.find_all("Cites")]
        print(f"  {article.get('key')}: cites {refs or 'nothing'}")


if __name__ == "__main__":
    main()
