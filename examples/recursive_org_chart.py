#!/usr/bin/env python3
"""Recursive DTDs: organization charts via REF (Section 6.2).

Run with:  python examples/recursive_org_chart.py

"A DTD can be designed in such a way that an element can be part of
any other element.  Hence, recursive relationships between elements
may occur.  The schema generation algorithm ... would execute infinite
loops."  The mapper breaks the cycle with a forward type declaration
and a TABLE OF REF collection, exactly as the paper sketches.
"""

from repro.core import XML2Oracle, compare
from repro.dtd import (
    RecursionError_,
    build_tree,
    parse_dtd,
    recursive_elements,
)
from repro.workloads import ORG_CHART_DOCUMENT, ORG_CHART_DTD
from repro.xmlkit import parse


def main() -> None:
    dtd = parse_dtd(ORG_CHART_DTD)
    print("DTD:")
    print(ORG_CHART_DTD)

    print("=" * 70)
    print("1. The naive tree construction detects the cycle and"
          " refuses")
    print("=" * 70)
    print("recursive element types:", recursive_elements(dtd))
    try:
        build_tree(dtd)
    except RecursionError_ as error:
        print("tree builder:", error)

    print()
    print("=" * 70)
    print("2. The REF strategy: forward declaration + TABLE OF REF")
    print("=" * 70)
    tool = XML2Oracle()
    schema = tool.register_schema(dtd)
    for statement in schema.script.statements:
        print(statement + ";")

    print()
    print("=" * 70)
    print("3. Store a nested organization — one row per Dept")
    print("=" * 70)
    document = parse(ORG_CHART_DOCUMENT)
    stored = tool.store(document)
    print(f"INSERT statements: {stored.load_result.insert_count}")
    print("TabDept row count:",
          tool.sql("SELECT COUNT(*) FROM TabDept").scalar())

    print()
    print("=" * 70)
    print("4. Queries traverse recursion levels by path")
    print("=" * 70)
    for depth in (1, 2, 3):
        path = "/Organization" + "/Dept" * depth + "/DName"
        names = [row[0] for row in tool.query(path).rows]
        print(f"  depth {depth}: {names}")

    print()
    print("=" * 70)
    print("5. Round trip")
    print("=" * 70)
    rebuilt = tool.fetch(stored.doc_id)
    print(compare(document, rebuilt).describe())

    print()
    print("=" * 70)
    print("6. DROP TYPE needs FORCE — 'the deletion of any type must"
          " be propagated to all dependents' (Section 6.2)")
    print("=" * 70)
    try:
        tool.sql("DROP TYPE Type_Dept")
    except Exception as error:  # noqa: BLE001 - demo output
        print("without FORCE:", error)
    result = tool.sql("DROP TYPE Type_Dept FORCE")
    print("with FORCE:", result.message)


if __name__ == "__main__":
    main()
