#!/usr/bin/env python3
"""Template-driven export: from the database back to XML (Section 6.3).

Run with:  python examples/template_export.py

"Object views can be applied in template-driven mapping procedures,
i.e., SELECT queries on the object view can be embedded into XML
template documents."  This example builds the Section 6.3 bridge —
shredded relational rows, the generated object types, object views on
top — and then renders an XML report whose content comes from
``sql:query`` elements in a template.
"""

from repro.core import (
    ObjectViewBuilder,
    analyze,
    generate_schema,
    process_template,
)
from repro.ordb import Database
from repro.relational import InliningMapping
from repro.workloads import make_university, university_dtd
from repro.xmlkit import serialize

TEMPLATE = """\
<FacultyReport term="2002S">
  <Source>shredded relational tables, seen through object views</Source>
  <Professors>
    <sql:query row-element="Entry">
      SELECT v.Professor.attrPName AS Name,
             v.Professor.attrDept AS Dept,
             v.Professor.attrSubject AS Teaches
      FROM OView_Professor v
      ORDER BY Name
    </sql:query>
  </Professors>
  <Statistics>
    <sql:query row-element="Totals">
      SELECT COUNT(*) AS Students FROM R_Student s
    </sql:query>
  </Statistics>
</FacultyReport>
"""


def main() -> None:
    dtd = university_dtd()
    plan = analyze(dtd)
    db = Database()
    for statement in generate_schema(plan).statements:
        db.execute(statement)
    relational = InliningMapping(dtd)
    relational.install(db)
    relational.load(db, make_university(students=8, seed=5), 1)
    for statement in ObjectViewBuilder(plan, relational).build_all():
        db.execute(statement)

    print("template:")
    print(TEMPLATE)
    print("=" * 70)
    print("expanded report:")
    print("=" * 70)
    report = process_template(db, TEMPLATE)
    print(serialize(report.root_element, indent="  "))


if __name__ == "__main__":
    main()
